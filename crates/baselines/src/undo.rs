//! UNDO-LOG: hardware undo logging (the paper's first baseline).
//!
//! Every `ATOMIC_STORE` that touches a line for the first time in a
//! transaction persists an undo record (the line's pre-image) and **blocks
//! until the record reaches NVRAM** — the defining cost of undo logging.
//! Updates then proceed in place. A log buffer suppresses redundant
//! entries for repeatedly-updated lines, as in the paper's tuned baseline.
//!
//! Commit: flush the write-set lines, persist the 8-byte commit register.
//! Recovery: entries of the (single, per-core) uncommitted transaction are
//! applied in reverse.

use fxhash::FxHashSet;
use ssp_simulator::addr::{PhysAddr, VirtAddr, Vpn, LINE_SIZE};
use ssp_simulator::cache::{CoreId, TxEviction};
use ssp_simulator::config::MachineConfig;
use ssp_simulator::fault::FaultSite;
use ssp_simulator::machine::Machine;
use ssp_simulator::obs::ObsKind;
use ssp_simulator::stats::WriteClass;
use ssp_simulator::tlb::Tlb;
use ssp_txn::engine::{line_spans, sorted_scratch, TxnEngine, TxnStats, WriteSetTracker};
use ssp_txn::vm::{NvLayout, VmManager};

use crate::common::{blocking_persist_cycles, CommitRegister, CoreLog, LogEntry};

/// Per-core open-transaction marker. The logged-line set and write-set
/// tracker live in per-core engine fields, reused across transactions so
/// the steady state allocates nothing.
#[derive(Debug, Clone)]
struct OpenTxn {
    tid: u64,
}

/// The hardware undo-logging engine.
///
/// # Examples
///
/// ```
/// use ssp_baselines::UndoLog;
/// use ssp_simulator::cache::CoreId;
/// use ssp_simulator::config::MachineConfig;
/// use ssp_txn::engine::TxnEngine;
///
/// let mut e = UndoLog::new(MachineConfig::default());
/// let core = CoreId::new(0);
/// let addr = e.map_new_page(core).base();
/// e.begin(core);
/// e.store(core, addr, &7u64.to_le_bytes());
/// e.commit(core);
/// e.crash_and_recover();
/// let mut buf = [0u8; 8];
/// e.load(core, addr, &mut buf);
/// assert_eq!(u64::from_le_bytes(buf), 7);
/// ```
#[derive(Debug, Clone)]
pub struct UndoLog {
    machine: Machine,
    vm: VmManager,
    tlbs: Vec<Tlb<()>>,
    logs: Vec<CoreLog>,
    commits: Vec<CommitRegister>,
    open: Vec<Option<OpenTxn>>,
    /// Per-core line base addresses already logged this transaction
    /// (cleared, capacity kept, at commit/abort).
    logged: Vec<FxHashSet<u64>>,
    /// Per-core write-set trackers, reused across transactions.
    trackers: Vec<WriteSetTracker>,
    /// Reusable commit scratch: the logged lines sorted for flushing.
    scratch_lines: Vec<u64>,
    stats: TxnStats,
    next_tid: u64,
}

impl UndoLog {
    /// Builds an undo-logging machine.
    pub fn new(cfg: MachineConfig) -> Self {
        let layout = NvLayout::default();
        let cores = cfg.cores;
        Self {
            machine: Machine::new(cfg.clone()),
            vm: VmManager::new(layout),
            tlbs: (0..cores).map(|_| Tlb::new(cfg.dtlb_entries)).collect(),
            logs: (0..cores).map(|c| CoreLog::new(layout, c)).collect(),
            commits: (0..cores).map(|c| CommitRegister::new(layout, c)).collect(),
            open: (0..cores).map(|_| None).collect(),
            logged: (0..cores).map(|_| FxHashSet::default()).collect(),
            trackers: (0..cores).map(|_| WriteSetTracker::new()).collect(),
            scratch_lines: Vec::new(),
            stats: TxnStats::default(),
            next_tid: 1,
        }
    }

    /// Undo log entries written so far (for Figure 6).
    pub fn log_entries(&self) -> u64 {
        self.logs.iter().map(CoreLog::entries_appended).sum()
    }

    fn translate(&mut self, core: CoreId, vpn: Vpn) -> PhysAddr {
        let hit = self.tlbs[core.index()].lookup(vpn).is_some();
        let ppn = self
            .vm
            .translate(vpn)
            .unwrap_or_else(|| panic!("access to unmapped page {vpn}"));
        if !hit {
            self.machine.record_tlb_miss(core);
            let _ = self.tlbs[core.index()].insert(vpn, ppn, ());
        }
        ppn.base()
    }

    fn paddr_of(&mut self, core: CoreId, addr: VirtAddr) -> PhysAddr {
        let base = self.translate(core, addr.vpn());
        PhysAddr::new(base.raw() + addr.page_offset() as u64)
    }

    /// In-place update writes can always go home: the undo record protects
    /// them.
    fn handle_tx_evictions(&mut self, evictions: Vec<TxEviction>) {
        for ev in evictions {
            self.machine
                .persist_bytes(None, ev.line, &ev.data, WriteClass::Data);
        }
    }

    fn store_line(&mut self, core: CoreId, addr: VirtAddr, data: &[u8]) {
        let paddr = self.paddr_of(core, addr);
        let line_base = paddr.line_base();
        let tid = self.open[core.index()].as_ref().expect("open txn").tid;
        let needs_log = !self.logged[core.index()].contains(&line_base.raw());
        if needs_log {
            // Read the pre-image (through the cache: it may be dirty).
            let mut old = [0u8; LINE_SIZE];
            let r = self.machine.read(core, line_base, &mut old);
            self.handle_tx_evictions(r.tx_evictions);
            let mut entry_data = [0u8; LINE_SIZE];
            entry_data.copy_from_slice(&old);
            let entry = LogEntry {
                tid,
                paddr: line_base,
                vaddr: addr.line_base(),
                data: entry_data,
            };
            let _ = self.logs[core.index()].append(&mut self.machine, &entry);
            self.logs[core.index()].persist_head(&mut self.machine, None);
            // The store blocks until the record is durable: charge the full
            // (un-overlapped) persist latency.
            let stall = blocking_persist_cycles(&self.machine);
            self.machine.add_cycles(core, stall);
            self.logged[core.index()].insert(line_base.raw());
        }
        let r = self.machine.write(core, paddr, data, false);
        self.handle_tx_evictions(r.tx_evictions);
    }
}

impl TxnEngine for UndoLog {
    fn name(&self) -> &'static str {
        "UNDO-LOG"
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn map_new_page(&mut self, core: CoreId) -> Vpn {
        self.vm.map_new_page(&mut self.machine, core)
    }

    fn begin(&mut self, core: CoreId) {
        assert!(
            self.open[core.index()].is_none(),
            "{core} already has an open transaction"
        );
        let tid = self.next_tid;
        self.next_tid += 1;
        self.open[core.index()] = Some(OpenTxn { tid });
        self.machine.add_cycles(core, 10);
        self.machine.obs_record(ObsKind::TxnBegin, tid);
    }

    fn load(&mut self, core: CoreId, addr: VirtAddr, buf: &mut [u8]) {
        self.stats.loads += 1;
        self.machine.obs_record(ObsKind::ReadSpan, addr.raw());
        for span in line_spans(addr, buf.len()) {
            let paddr = self.paddr_of(core, span.addr);
            let r = self.machine.read(
                core,
                paddr,
                &mut buf[span.buf_offset..span.buf_offset + span.len],
            );
            self.handle_tx_evictions(r.tx_evictions);
        }
    }

    fn store(&mut self, core: CoreId, addr: VirtAddr, data: &[u8]) {
        assert!(
            self.open[core.index()].is_some(),
            "ATOMIC_STORE outside a transaction on {core}"
        );
        self.stats.stores += 1;
        self.machine.obs_record(ObsKind::WriteSpan, addr.raw());
        self.trackers[core.index()].record(addr, data.len());
        for span in line_spans(addr, data.len()) {
            self.store_line(
                core,
                span.addr,
                &data[span.buf_offset..span.buf_offset + span.len],
            );
        }
    }

    fn commit(&mut self, core: CoreId) {
        let txn = self.open[core.index()]
            .take()
            .unwrap_or_else(|| panic!("commit without an open transaction on {core}"));
        self.machine.obs_record(ObsKind::Validate, txn.tid);
        // Flush the write set so the new values are durable. Sorted: the
        // set's hash order varies per instance, and flush order reaches
        // the row-buffer model (determinism contract of `TxnEngine`).
        // The sort runs in an engine-owned scratch vector (no per-commit
        // allocation).
        let lines = sorted_scratch(
            &mut self.scratch_lines,
            self.logged[core.index()].drain(),
            |&l| l,
        );
        for &line in &lines {
            self.machine
                .flush(Some(core), PhysAddr::new(line), WriteClass::Data);
        }
        self.scratch_lines = lines;
        // Fault site: data durable, commit register not yet bumped — a
        // cut here must roll the transaction back on recovery.
        self.machine.fault_point(FaultSite::CommitData);
        // Atomic commit point.
        self.commits[core.index()].commit(&mut self.machine, Some(core), txn.tid);
        // Fault site: the commit register is durable — a cut here must
        // keep the transaction.
        self.machine.fault_point(FaultSite::CommitMark);
        // The log space can be reused.
        self.logs[core.index()].truncate();
        self.trackers[core.index()].fold_commit(&mut self.stats);
        self.machine.obs_record(ObsKind::Commit, txn.tid);
    }

    fn abort(&mut self, core: CoreId) {
        let txn = self.open[core.index()]
            .take()
            .unwrap_or_else(|| panic!("abort without an open transaction on {core}"));
        self.machine.obs_record(ObsKind::Abort, txn.tid);
        // Apply undo images in reverse.
        let entries = self.logs[core.index()].read_all(&self.machine);
        for entry in entries.iter().rev() {
            if entry.tid == txn.tid {
                let r = self.machine.write(core, entry.paddr, &entry.data, false);
                self.handle_tx_evictions(r.tx_evictions);
            }
        }
        self.logs[core.index()].truncate();
        self.logged[core.index()].clear();
        self.trackers[core.index()].fold_abort(&mut self.stats);
    }

    fn crash(&mut self) {
        self.machine.crash();
        for tlb in &mut self.tlbs {
            let _ = tlb.drain();
        }
        for o in &mut self.open {
            *o = None;
        }
        for l in &mut self.logged {
            l.clear();
        }
        for t in &mut self.trackers {
            t.clear();
        }
    }

    fn recover(&mut self) {
        self.machine.obs_record(ObsKind::RecoveryReplay, 0);
        self.vm.recover(&self.machine);
        let mut max_tid = 0;
        let mut per_core: Vec<(u64, Vec<LogEntry>)> = Vec::new();
        for c in 0..self.logs.len() {
            self.logs[c].recover(&self.machine);
            self.commits[c].recover(&self.machine);
            let committed = self.commits[c].get();
            max_tid = max_tid.max(committed);
            per_core.push((committed, self.logs[c].read_all(&self.machine)));
        }
        // Fault site: logs and commit registers read, nothing rolled back
        // yet — a crash *during recovery*; rerunning recovery must
        // succeed (undo replay is idempotent).
        self.machine.fault_point(FaultSite::Recovery);
        for (committed, entries) in &per_core {
            // Roll back the (single) uncommitted transaction: its entries
            // are exactly those with tid > the core's commit register.
            for entry in entries.iter().rev() {
                max_tid = max_tid.max(entry.tid);
                if entry.tid > *committed {
                    self.machine
                        .persist_bytes(None, entry.paddr, &entry.data, WriteClass::Data);
                }
            }
        }
        for log in &mut self.logs {
            log.truncate();
        }
        self.next_tid = max_tid + 1;
    }

    fn in_txn(&self, core: CoreId) -> bool {
        self.open[core.index()].is_some()
    }

    fn txn_stats(&self) -> &TxnStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CoreId = CoreId::new(0);

    fn engine() -> UndoLog {
        UndoLog::new(MachineConfig::default())
    }

    fn read_u64(e: &mut UndoLog, addr: VirtAddr) -> u64 {
        let mut buf = [0u8; 8];
        e.load(C0, addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    #[test]
    fn committed_survives_crash() {
        let mut e = engine();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, addr, &5u64.to_le_bytes());
        e.commit(C0);
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, addr), 5);
    }

    #[test]
    fn uncommitted_rolls_back_on_crash() {
        let mut e = engine();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, addr, &1u64.to_le_bytes());
        e.commit(C0);
        e.begin(C0);
        e.store(C0, addr, &2u64.to_le_bytes());
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, addr), 1);
    }

    #[test]
    fn abort_restores_pre_images() {
        let mut e = engine();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, addr, &10u64.to_le_bytes());
        e.commit(C0);
        e.begin(C0);
        e.store(C0, addr, &20u64.to_le_bytes());
        e.abort(C0);
        assert_eq!(read_u64(&mut e, addr), 10);
    }

    #[test]
    fn one_log_entry_per_line_despite_repeated_writes() {
        let mut e = engine();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        for i in 0..10u64 {
            e.store(C0, addr, &i.to_le_bytes());
        }
        e.commit(C0);
        assert_eq!(e.log_entries(), 1);
    }

    #[test]
    fn log_and_data_writes_both_counted() {
        let mut e = engine();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        for i in 0..4u64 {
            e.store(C0, addr.add(i * 64), &i.to_le_bytes());
        }
        e.commit(C0);
        let s = e.machine().stats();
        // 4 undo entries (88 B each, coalesced) + head + commit register.
        assert!(s.nvram_writes(WriteClass::Log) >= 6);
        assert!(s.nvram_writes(WriteClass::Data) >= 4);
    }

    #[test]
    fn stores_block_on_log_persist() {
        let mut e = engine();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        let before = e.machine().cycles(C0);
        e.store(C0, addr, &1u64.to_le_bytes());
        let delta = e.machine().cycles(C0) - before;
        // At least the full 200 ns NVRAM write (740 cycles at 3.7 GHz).
        assert!(delta >= 740, "store stalled only {delta} cycles");
    }

    #[test]
    fn multi_page_atomicity() {
        let mut e = engine();
        let a = e.map_new_page(C0).base();
        let b = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, a, &1u64.to_le_bytes());
        e.store(C0, b, &2u64.to_le_bytes());
        e.commit(C0);
        e.begin(C0);
        e.store(C0, a, &3u64.to_le_bytes());
        e.store(C0, b, &4u64.to_le_bytes());
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, a), 1);
        assert_eq!(read_u64(&mut e, b), 2);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut e = engine();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, addr, &9u64.to_le_bytes());
        e.commit(C0);
        e.crash_and_recover();
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, addr), 9);
    }
}
