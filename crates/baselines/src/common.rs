//! Shared pieces of the logging baselines: per-core log areas with
//! coalesced line-write accounting, and commit registers.
//!
//! Hardware logging designs (ATOM, DHTM) append log entries through a
//! write-combining buffer at the memory controller, so consecutive appends
//! share cache-line writes. [`CoreLog`] models that: it counts one NVRAM
//! line write per *newly touched* line of the log, not per append.

use ssp_simulator::addr::{PhysAddr, VirtAddr, LINE_SIZE};
use ssp_simulator::cache::CoreId;
use ssp_simulator::machine::Machine;
use ssp_simulator::stats::WriteClass;
use ssp_simulator::timing::MemKind;
use ssp_txn::vm::NvLayout;

/// Bytes of log area per core.
pub const PER_CORE_LOG_BYTES: u64 = 4 * 1024 * 1024;

/// Header byte offsets (per core) for the baselines' registers; the VM
/// manager owns 0..64 and SSP owns 64..128.
const HDR_BASE: u64 = 128;
const HDR_STRIDE: u64 = 64; // one line per core: no false sharing

/// One log entry: a full line image plus identifying metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Owning transaction.
    pub tid: u64,
    /// Home physical address of the line.
    pub paddr: PhysAddr,
    /// Virtual line address (diagnostics).
    pub vaddr: VirtAddr,
    /// The logged line image (old data for undo, new data for redo).
    pub data: [u8; LINE_SIZE],
}

/// Serialised entry size: tid(8) + paddr(8) + vaddr(8) + data(64).
pub const ENTRY_BYTES: u64 = 88;

/// A per-core log area with coalesced write accounting.
#[derive(Debug, Clone)]
pub struct CoreLog {
    layout: NvLayout,
    core: usize,
    /// Volatile append offset.
    head: u64,
    /// Highest log line already counted as written (for coalescing).
    counted_until: u64,
    entries_appended: u64,
}

impl CoreLog {
    /// Opens core `core`'s log area.
    pub fn new(layout: NvLayout, core: usize) -> Self {
        Self {
            layout,
            core,
            head: 0,
            counted_until: 0,
            entries_appended: 0,
        }
    }

    /// Entries appended since creation.
    pub fn entries_appended(&self) -> u64 {
        self.entries_appended
    }

    /// Live entries (since the last truncation).
    pub fn len(&self) -> usize {
        (self.head / ENTRY_BYTES) as usize
    }

    /// Whether the log holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.head == 0
    }

    /// Appends an entry and persists it. Returns the persist latency in
    /// cycles (callers decide whether it blocks the core — undo logging
    /// blocks; redo logging overlaps). NVRAM line writes are counted with
    /// coalescing: only newly touched log lines count.
    pub fn append(&mut self, machine: &mut Machine, entry: &LogEntry) -> u64 {
        let mut buf = [0u8; ENTRY_BYTES as usize];
        buf[0..8].copy_from_slice(&entry.tid.to_le_bytes());
        buf[8..16].copy_from_slice(&entry.paddr.raw().to_le_bytes());
        buf[16..24].copy_from_slice(&entry.vaddr.raw().to_le_bytes());
        buf[24..24 + LINE_SIZE].copy_from_slice(&entry.data);

        let addr = self.entry_addr(self.head);
        // Store the bytes without the per-call line counting of
        // persist_bytes; count coalesced below.
        machine.store_bytes_raw(addr, &buf);
        self.head += ENTRY_BYTES;
        self.entries_appended += 1;

        // Coalesced accounting: lines fully or newly covered by [0, head).
        let end_line = self.head.div_ceil(LINE_SIZE as u64);
        let new_lines = end_line.saturating_sub(self.counted_until);
        self.counted_until = end_line;
        let mut cycles = 0;
        for i in 0..new_lines {
            let line_addr =
                self.entry_addr((self.counted_until - new_lines + i) * LINE_SIZE as u64);
            cycles += machine.account_write(MemKind::Nvram, line_addr, WriteClass::Log);
        }
        if cycles == 0 {
            // Entirely coalesced into an already-counted line; charge the
            // buffered-write cost only.
            cycles = machine
                .config()
                .ns_to_cycles(machine.config().nvram.write_ns)
                / machine.config().persist_mlp.max(1) as u64;
        }
        cycles
    }

    /// Reads all live entries (oldest first).
    pub fn read_all(&self, machine: &Machine) -> Vec<LogEntry> {
        let mut out = Vec::with_capacity(self.len());
        let mut offset = 0;
        while offset + ENTRY_BYTES <= self.head {
            let mut buf = [0u8; ENTRY_BYTES as usize];
            machine.read_bytes_uncached(self.entry_addr(offset), &mut buf);
            let tid = u64::from_le_bytes(buf[0..8].try_into().unwrap());
            let paddr = PhysAddr::new(u64::from_le_bytes(buf[8..16].try_into().unwrap()));
            let vaddr = VirtAddr::new(u64::from_le_bytes(buf[16..24].try_into().unwrap()));
            let mut data = [0u8; LINE_SIZE];
            data.copy_from_slice(&buf[24..24 + LINE_SIZE]);
            out.push(LogEntry {
                tid,
                paddr,
                vaddr,
                data,
            });
            offset += ENTRY_BYTES;
        }
        out
    }

    /// Truncates the log (volatile — validity is determined by the commit
    /// register, see [`CommitRegister`]).
    pub fn truncate(&mut self) {
        self.head = 0;
        self.counted_until = 0;
    }

    /// Persists the current head so recovery knows the extent of valid
    /// entries. One 8-byte persist (one line write).
    pub fn persist_head(&mut self, machine: &mut Machine, core: Option<CoreId>) {
        machine.persist_bytes(
            core,
            self.head_addr(),
            &self.head.to_le_bytes(),
            WriteClass::Log,
        );
    }

    /// Re-reads the persisted head after a crash.
    pub fn recover(&mut self, machine: &Machine) {
        let mut buf = [0u8; 8];
        machine.read_bytes_uncached(self.head_addr(), &mut buf);
        self.head = u64::from_le_bytes(buf);
        self.counted_until = 0;
    }

    fn head_addr(&self) -> PhysAddr {
        self.layout
            .header_addr(HDR_BASE + self.core as u64 * HDR_STRIDE)
    }

    fn entry_addr(&self, offset: u64) -> PhysAddr {
        debug_assert!(offset < PER_CORE_LOG_BYTES);
        self.layout
            .log_addr(self.core as u64 * PER_CORE_LOG_BYTES + offset)
    }
}

/// A per-core persisted "last committed transaction" register — the commit
/// point of the logging designs.
#[derive(Debug, Clone)]
pub struct CommitRegister {
    layout: NvLayout,
    core: usize,
    value: u64,
}

impl CommitRegister {
    /// Opens core `core`'s commit register.
    pub fn new(layout: NvLayout, core: usize) -> Self {
        Self {
            layout,
            core,
            value: 0,
        }
    }

    /// The last committed transaction id.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Persists `tid` as committed (the 8-byte atomic commit record).
    /// Returns after charging the persist to `core` if given.
    pub fn commit(&mut self, machine: &mut Machine, core: Option<CoreId>, tid: u64) {
        self.value = tid;
        machine.persist_bytes(core, self.addr(), &tid.to_le_bytes(), WriteClass::Log);
    }

    /// Re-reads the register after a crash.
    pub fn recover(&mut self, machine: &Machine) {
        let mut buf = [0u8; 8];
        machine.read_bytes_uncached(self.addr(), &mut buf);
        self.value = u64::from_le_bytes(buf);
    }

    fn addr(&self) -> PhysAddr {
        self.layout
            .header_addr(HDR_BASE + self.core as u64 * HDR_STRIDE + 8)
    }
}

/// Extension methods the baselines need on [`Machine`].
pub trait MachineLogExt {
    /// Stores bytes to memory without counting line writes (the caller
    /// accounts for them with coalescing).
    fn store_bytes_raw(&mut self, addr: PhysAddr, data: &[u8]);

    /// Counts one line write of `class` and returns its latency in cycles
    /// without charging any core.
    fn account_write(&mut self, kind: MemKind, addr: PhysAddr, class: WriteClass) -> u64;
}

impl MachineLogExt for Machine {
    fn store_bytes_raw(&mut self, addr: PhysAddr, data: &[u8]) {
        self.write_bytes_unaccounted(addr, data);
    }

    fn account_write(&mut self, kind: MemKind, addr: PhysAddr, class: WriteClass) -> u64 {
        self.account_memory_write(kind, addr, class)
    }
}

/// One entry's worth of blocking persist latency (undo logging's stall).
pub fn blocking_persist_cycles(machine: &Machine) -> u64 {
    machine
        .config()
        .ns_to_cycles(machine.config().nvram.write_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_simulator::config::MachineConfig;

    fn setup() -> (Machine, CoreLog) {
        (
            Machine::new(MachineConfig::default()),
            CoreLog::new(NvLayout::default(), 0),
        )
    }

    fn entry(tid: u64, seed: u8) -> LogEntry {
        LogEntry {
            tid,
            paddr: PhysAddr::new(0x1000 + seed as u64 * 64),
            vaddr: VirtAddr::new(0x2000 + seed as u64 * 64),
            data: [seed; LINE_SIZE],
        }
    }

    #[test]
    fn append_read_round_trip() {
        let (mut m, mut log) = setup();
        log.append(&mut m, &entry(1, 0x11));
        log.append(&mut m, &entry(1, 0x22));
        let all = log.read_all(&m);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], entry(1, 0x11));
        assert_eq!(all[1], entry(1, 0x22));
    }

    #[test]
    fn coalesced_write_counting() {
        let (mut m, mut log) = setup();
        // 10 entries x 88 B = 880 B -> ceil(880/64) = 14 line writes, not
        // 10 x 2 = 20.
        for i in 0..10 {
            log.append(&mut m, &entry(1, i));
        }
        assert_eq!(m.stats().nvram_writes(WriteClass::Log), 14);
    }

    #[test]
    fn head_and_entries_survive_crash() {
        let (mut m, mut log) = setup();
        log.append(&mut m, &entry(9, 0x33));
        log.persist_head(&mut m, None);
        m.crash();
        let mut log2 = CoreLog::new(NvLayout::default(), 0);
        log2.recover(&m);
        assert_eq!(log2.len(), 1);
        assert_eq!(log2.read_all(&m)[0].tid, 9);
    }

    #[test]
    fn unpersisted_head_hides_entries() {
        let (mut m, mut log) = setup();
        log.append(&mut m, &entry(9, 0x44));
        // head never persisted
        m.crash();
        let mut log2 = CoreLog::new(NvLayout::default(), 0);
        log2.recover(&m);
        assert!(log2.is_empty());
    }

    #[test]
    fn per_core_logs_are_disjoint() {
        let (mut m, mut log0) = setup();
        let mut log1 = CoreLog::new(NvLayout::default(), 1);
        log0.append(&mut m, &entry(1, 0x55));
        log1.append(&mut m, &entry(2, 0x66));
        assert_eq!(log0.read_all(&m)[0].tid, 1);
        assert_eq!(log1.read_all(&m)[0].tid, 2);
    }

    #[test]
    fn commit_register_round_trip() {
        let mut m = Machine::new(MachineConfig::default());
        let mut reg = CommitRegister::new(NvLayout::default(), 0);
        reg.commit(&mut m, None, 42);
        m.crash();
        let mut reg2 = CommitRegister::new(NvLayout::default(), 0);
        reg2.recover(&m);
        assert_eq!(reg2.get(), 42);
    }

    #[test]
    fn truncate_resets_coalescing() {
        let (mut m, mut log) = setup();
        log.append(&mut m, &entry(1, 1));
        log.truncate();
        let before = m.stats().nvram_writes(WriteClass::Log);
        log.append(&mut m, &entry(2, 2));
        // After truncation the first log lines are rewritten and counted
        // again.
        assert!(m.stats().nvram_writes(WriteClass::Log) > before);
    }
}
