//! # ssp-baselines — logging comparators for the SSP reproduction
//!
//! The engines the paper evaluates against (Section 5.1), plus the
//! conventional shadow-paging ablation it dismisses analytically:
//!
//! * [`undo::UndoLog`] — hardware undo logging (ATOM-like): each first
//!   write of a line persists an undo record *before* the in-place update;
//!   the store blocks until the record is durable.
//! * [`redo::RedoLog`] — hardware redo logging (DHTM-like): stores stay
//!   speculative in the cache, a coalescing log buffer persists one entry
//!   per line at commit, and the data write-back drains *after* commit,
//!   delaying only subsequent transactions.
//! * [`shadow::ShadowPaging`] — page-granularity copy-on-write, the
//!   mechanism SSP refines; kept as an ablation baseline.

#![warn(missing_docs)]

pub mod common;
pub mod redo;
pub mod shadow;
pub mod undo;

pub use redo::RedoLog;
pub use shadow::ShadowPaging;
pub use undo::UndoLog;
