//! # ssp-core — Shadow Sub-Paging
//!
//! The paper's primary contribution: failure-atomic transactions via
//! cache-line-level shadow paging.

#![warn(missing_docs)]

pub mod bitmap;
pub mod config;
pub mod consolidate;
pub mod engine;
pub mod fallback;
pub mod journal;
pub mod ssp_cache;
pub mod write_set;

pub use bitmap::LineBitmap;
pub use config::SspConfig;
pub use engine::Ssp;
