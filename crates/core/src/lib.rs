//! # ssp-core — Shadow Sub-Paging
//!
//! The paper's primary contribution: failure-atomic transactions via
//! cache-line-level shadow paging.

#![warn(missing_docs)]

pub mod bitmap;
pub mod engine;
pub mod fallback;
pub mod config;
pub mod consolidate;
pub mod journal;
pub mod ssp_cache;
pub mod write_set;

pub use bitmap::LineBitmap;
pub use engine::Ssp;
pub use config::SspConfig;
