//! The per-core write-set buffer (Section 4.2 of the paper).
//!
//! Decoupling the *updated* bitmaps from the TLB means a page can fall out
//! of the TLB mid-transaction without losing the write set. The buffer has
//! a fixed number of entries (64 by default); inserting a 65th page
//! overflows and sends the transaction down the software fall-back path.
//! Bit positions are *tracking units*: individual cache lines in the base
//! design, sub-page groups under the Section 4.3 coarser granularities.

use fxhash::FxHashMap;
use ssp_simulator::addr::{LineIdx, Vpn};

use crate::bitmap::LineBitmap;

/// Outcome of recording a first-write in the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteSetInsert {
    /// The line is now tracked; it was not previously in the write set.
    Inserted,
    /// The line was already tracked.
    AlreadyPresent,
    /// The buffer is full and the page is new: hardware tracking is
    /// impossible — take the fall-back path.
    Overflow,
}

/// A fixed-capacity map from virtual page to updated-lines bitmap.
///
/// Fast-hashed: `record`/`contains` run once per `ATOMIC_STORE`, and every
/// consumer of [`iter`](Self::iter) sorts before the data can reach the
/// machine, so the hasher never shows up in simulated behavior.
#[derive(Debug, Clone)]
pub struct WriteSetBuffer {
    capacity: usize,
    pages: FxHashMap<u64, LineBitmap>,
}

impl WriteSetBuffer {
    /// Creates a buffer with room for `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write-set buffer capacity must be positive");
        Self {
            capacity,
            pages: FxHashMap::default(),
        }
    }

    /// The buffer's page capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently tracked.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no page is tracked.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The updated bitmap for `vpn`, if tracked.
    pub fn updated(&self, vpn: Vpn) -> Option<LineBitmap> {
        self.pages.get(&vpn.raw()).copied()
    }

    /// Whether `line` of `vpn` is in the write set.
    pub fn contains(&self, vpn: Vpn, line: LineIdx) -> bool {
        self.pages.get(&vpn.raw()).is_some_and(|b| b.get(line))
    }

    /// Records a write to `line` of `vpn`.
    pub fn record(&mut self, vpn: Vpn, line: LineIdx) -> WriteSetInsert {
        if let Some(bitmap) = self.pages.get_mut(&vpn.raw()) {
            if bitmap.get(line) {
                return WriteSetInsert::AlreadyPresent;
            }
            bitmap.set(line);
            return WriteSetInsert::Inserted;
        }
        if self.pages.len() >= self.capacity {
            return WriteSetInsert::Overflow;
        }
        let mut bitmap = LineBitmap::ZERO;
        bitmap.set(line);
        self.pages.insert(vpn.raw(), bitmap);
        WriteSetInsert::Inserted
    }

    /// Iterates over `(vpn, updated)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, LineBitmap)> + '_ {
        self.pages.iter().map(|(&v, &b)| (Vpn::new(v), b))
    }

    /// Clears the buffer (commit or abort).
    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vpn(i: u64) -> Vpn {
        Vpn::new(0x10_0000 + i)
    }

    #[test]
    fn record_and_query() {
        let mut b = WriteSetBuffer::new(4);
        assert_eq!(b.record(vpn(1), LineIdx::new(3)), WriteSetInsert::Inserted);
        assert_eq!(
            b.record(vpn(1), LineIdx::new(3)),
            WriteSetInsert::AlreadyPresent
        );
        assert_eq!(b.record(vpn(1), LineIdx::new(4)), WriteSetInsert::Inserted);
        assert!(b.contains(vpn(1), LineIdx::new(3)));
        assert!(!b.contains(vpn(1), LineIdx::new(5)));
        assert_eq!(b.updated(vpn(1)).unwrap().count_ones(), 2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn overflow_on_capacity_plus_one_pages() {
        let mut b = WriteSetBuffer::new(2);
        assert_eq!(b.record(vpn(1), LineIdx::new(0)), WriteSetInsert::Inserted);
        assert_eq!(b.record(vpn(2), LineIdx::new(0)), WriteSetInsert::Inserted);
        assert_eq!(b.record(vpn(3), LineIdx::new(0)), WriteSetInsert::Overflow);
        // Existing pages still accept new lines after a failed insert.
        assert_eq!(b.record(vpn(2), LineIdx::new(1)), WriteSetInsert::Inserted);
    }

    #[test]
    fn clear_resets() {
        let mut b = WriteSetBuffer::new(2);
        b.record(vpn(1), LineIdx::new(0));
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.updated(vpn(1)), None);
    }

    #[test]
    fn iter_covers_all_pages() {
        let mut b = WriteSetBuffer::new(4);
        b.record(vpn(1), LineIdx::new(0));
        b.record(vpn(2), LineIdx::new(1));
        let mut pages: Vec<u64> = b.iter().map(|(v, _)| v.raw()).collect();
        pages.sort_unstable();
        assert_eq!(pages, vec![vpn(1).raw(), vpn(2).raw()]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = WriteSetBuffer::new(0);
    }
}
