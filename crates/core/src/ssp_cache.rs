//! The SSP cache — per-page metadata managed by the memory controller
//! (Section 4.1.2 of the paper).
//!
//! Each *slot* serves one actively-updated virtual page and records the two
//! physical page numbers, the durable *committed* bitmap and the transient
//! *current* bitmap, plus reference counts used to drive consolidation.
//! The cache is split in two, as in the paper:
//!
//! * the **transient** half (this struct's `slots`) would live in DRAM and
//!   serves all runtime requests;
//! * the **persistent** half is a fixed NVRAM array (40 bytes per slot in
//!   the `meta` region) written only by checkpointing and read only during
//!   recovery.
//!
//! Access latency models the paper's L3 slice: the most recently used
//! `l3_entries` slots hit at L3 latency, everything else pays a DRAM
//! access; Figure 9's sweep overrides this with a fixed latency.

use fxhash::{FxHashMap, FxHashSet};
use ssp_simulator::addr::{PhysAddr, Ppn, Vpn};
use ssp_simulator::config::MachineConfig;
use ssp_simulator::machine::Machine;
use ssp_simulator::stats::WriteClass;
use ssp_txn::vm::NvLayout;

use crate::bitmap::LineBitmap;
use crate::config::SspConfig;
use crate::journal::SlotId;

/// Bytes per persistent slot record.
pub const SLOT_BYTES: u64 = 40;

/// Transient metadata for one actively-updated page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SspEntry {
    /// The virtual page served by this slot.
    pub vpn: Vpn,
    /// The mapped ("original") physical page.
    pub ppn0: Ppn,
    /// The shadow physical page.
    pub ppn1: Ppn,
    /// Which copy holds each line's durable data (bit set → `ppn1`).
    pub committed: LineBitmap,
    /// Which copy holds each line's freshest data (bit set → `ppn1`).
    pub current: LineBitmap,
    /// Bitmask of cores with uncommitted updates on this page.
    pub core_refs: u64,
    /// Whether the page is queued for / undergoing consolidation.
    pub consolidating: bool,
}

impl SspEntry {
    /// Physical address of `line` in the *current* copy.
    pub fn current_line_addr(&self, line: ssp_simulator::addr::LineIdx) -> PhysAddr {
        if self.current.get(line) {
            self.ppn1.line_addr(line)
        } else {
            self.ppn0.line_addr(line)
        }
    }

    /// Physical address of `line` in the *other* (non-current) copy.
    pub fn other_line_addr(&self, line: ssp_simulator::addr::LineIdx) -> PhysAddr {
        if self.current.get(line) {
            self.ppn0.line_addr(line)
        } else {
            self.ppn1.line_addr(line)
        }
    }
}

/// One slot: a fixed spare page plus, when active, an entry.
#[derive(Debug, Clone)]
struct Slot {
    /// The slot's spare physical page, handed to whichever virtual page the
    /// slot currently serves (pre-associated at init; swapped by
    /// consolidation).
    spare: Ppn,
    entry: Option<SspEntry>,
}

/// The memory controller's SSP cache.
#[derive(Debug, Clone)]
pub struct SspCache {
    layout: NvLayout,
    slots: Vec<Slot>,
    /// Fast-hashed: `sid_of` runs on every transactional load/store and
    /// the map is never iterated.
    by_vpn: FxHashMap<u64, SlotId>,
    /// MRU-first recency order of slot ids, for the L3-slice latency model.
    recency: Vec<SlotId>,
    l3_entries: usize,
    meta_latency_override: Option<u64>,
    /// Slots whose persistent image is stale (need checkpointing).
    dirty: FxHashSet<SlotId>,
    /// Reusable checkpoint scratch (the sorted drain of `dirty`).
    checkpoint_scratch: Vec<SlotId>,
    /// Slots that grew beyond the initial sizing (capacity pressure stat).
    grown: usize,
}

impl SspCache {
    /// Creates the cache with `slots` slots, each pre-associated with a
    /// spare page from the shadow pool.
    pub fn new(layout: NvLayout, slots: usize, ssp_cfg: &SspConfig) -> Self {
        let slots_vec = (0..slots)
            .map(|i| Slot {
                spare: layout.shadow_page(i as u64),
                entry: None,
            })
            .collect();
        Self {
            layout,
            slots: slots_vec,
            by_vpn: FxHashMap::default(),
            recency: Vec::new(),
            l3_entries: ssp_cfg.ssp_cache_l3_entries,
            meta_latency_override: ssp_cfg.meta_latency_override,
            dirty: FxHashSet::default(),
            checkpoint_scratch: Vec::new(),
            grown: 0,
        }
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// How many slots were added beyond the initial `N × T + O` sizing.
    pub fn grown_slots(&self) -> usize {
        self.grown
    }

    /// Looks up the slot serving `vpn`.
    pub fn sid_of(&self, vpn: Vpn) -> Option<SlotId> {
        self.by_vpn.get(&vpn.raw()).copied()
    }

    /// The entry in slot `sid`, if active.
    pub fn entry(&self, sid: SlotId) -> Option<&SspEntry> {
        self.slots[sid as usize].entry.as_ref()
    }

    /// Mutable entry in slot `sid`; marks the slot's persistent image stale.
    pub fn entry_mut(&mut self, sid: SlotId) -> Option<&mut SspEntry> {
        self.dirty.insert(sid);
        self.slots[sid as usize].entry.as_mut()
    }

    /// The entry serving `vpn`, if any.
    pub fn entry_by_vpn(&self, vpn: Vpn) -> Option<(&SspEntry, SlotId)> {
        let sid = self.sid_of(vpn)?;
        self.entry(sid).map(|e| (e, sid))
    }

    /// Charges one SSP-cache access for `sid`: L3 latency if the slot is
    /// within the L3-resident recency window, DRAM latency otherwise
    /// (or the Figure 9 override).
    pub fn access_cycles(&mut self, sid: SlotId, cfg: &MachineConfig) -> u64 {
        if let Some(fixed) = self.meta_latency_override {
            self.touch(sid);
            return fixed;
        }
        let pos = self.recency.iter().position(|&s| s == sid);
        let hit = pos.is_some_and(|p| p < self.l3_entries);
        self.touch(sid);
        if hit {
            cfg.l3.latency_cycles
        } else {
            cfg.ns_to_cycles(cfg.dram.read_ns)
        }
    }

    fn touch(&mut self, sid: SlotId) {
        match self.recency.iter().position(|&s| s == sid) {
            // One rotate instead of remove + insert: same order, no shift
            // of the whole tail twice.
            Some(pos) => self.recency[..=pos].rotate_right(1),
            None => self.recency.insert(0, sid),
        }
    }

    /// Allocates a slot for `vpn` (which currently maps to `ppn0`). Prefers
    /// an empty slot, then evicts a consolidated, unreferenced entry, and
    /// grows the cache as a last resort (the paper's "resize and request
    /// more pages from the OS"). Returns the slot id and the shadow page
    /// the new entry must use.
    pub fn allocate(
        &mut self,
        vpn: Vpn,
        ppn0: Ppn,
        tlb_holders: &FxHashMap<u64, u64>,
    ) -> (SlotId, Ppn) {
        debug_assert!(self.sid_of(vpn).is_none(), "page already has a slot");
        let sid = self
            .slots
            .iter()
            .position(|s| s.entry.is_none())
            .or_else(|| {
                self.slots.iter().position(|s| {
                    s.entry.as_ref().is_some_and(|e| {
                        e.committed.is_zero()
                            && e.core_refs == 0
                            && !e.consolidating
                            && tlb_holders.get(&e.vpn.raw()).copied().unwrap_or(0) == 0
                    })
                })
            })
            .unwrap_or_else(|| {
                let i = self.slots.len();
                self.slots.push(Slot {
                    spare: self.layout.shadow_page(i as u64),
                    entry: None,
                });
                self.grown += 1;
                i
            });
        if let Some(old) = self.slots[sid].entry.take() {
            self.by_vpn.remove(&old.vpn.raw());
            self.dirty.insert(sid as SlotId);
        }
        let spare = self.slots[sid].spare;
        let entry = SspEntry {
            vpn,
            ppn0,
            ppn1: spare,
            committed: LineBitmap::ZERO,
            current: LineBitmap::ZERO,
            core_refs: 0,
            consolidating: false,
        };
        self.slots[sid].entry = Some(entry);
        self.by_vpn.insert(vpn.raw(), sid as SlotId);
        self.dirty.insert(sid as SlotId);
        (sid as SlotId, spare)
    }

    /// Records that consolidation swapped the roles of slot `sid`'s pages:
    /// the spare becomes `new_spare`.
    pub fn set_spare(&mut self, sid: SlotId, new_spare: Ppn) {
        self.slots[sid as usize].spare = new_spare;
        self.dirty.insert(sid);
    }

    /// The spare page currently associated with slot `sid`.
    pub fn spare_of(&self, sid: SlotId) -> Ppn {
        self.slots[sid as usize].spare
    }

    /// Slots eligible for wear-levelling spare rotation: inactive entries
    /// with all committed data consolidated into `ppn0` (nothing lives on
    /// the spare), or empty slots.
    pub fn rotatable_slots(&self) -> Vec<SlotId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| match &s.entry {
                None => true,
                Some(e) => e.committed.is_zero() && e.core_refs == 0 && !e.consolidating,
            })
            .map(|(i, _)| i as SlotId)
            .collect()
    }

    /// Replaces slot `sid`'s spare page with `fresh` (Section 4.1.2 wear
    /// levelling) and returns the retired page. The caller must journal
    /// the change for active entries.
    ///
    /// # Panics
    ///
    /// Panics if the slot's entry still holds committed data on the spare.
    pub fn rotate_spare(&mut self, sid: SlotId, fresh: Ppn) -> Ppn {
        let slot = &mut self.slots[sid as usize];
        if let Some(entry) = &mut slot.entry {
            assert!(
                entry.committed.is_zero(),
                "cannot rotate a spare holding committed data"
            );
            entry.ppn1 = fresh;
        }
        let old = slot.spare;
        slot.spare = fresh;
        self.dirty.insert(sid);
        old
    }

    /// Installs an entry into a specific slot (recovery replay).
    pub fn install(&mut self, sid: SlotId, entry: SspEntry) {
        let idx = sid as usize;
        while self.slots.len() <= idx {
            let i = self.slots.len();
            self.slots.push(Slot {
                spare: self.layout.shadow_page(i as u64),
                entry: None,
            });
        }
        if let Some(old) = self.slots[idx].entry.take() {
            self.by_vpn.remove(&old.vpn.raw());
        }
        self.slots[idx].spare = entry.ppn1;
        self.by_vpn.insert(entry.vpn.raw(), sid);
        self.slots[idx].entry = Some(entry);
        // The persistent image is stale until the next checkpoint folds
        // this in — without this, a recovery followed by a journal
        // truncation would destroy the only durable copy of the mapping.
        self.dirty.insert(sid);
    }

    /// Drops the entry in slot `sid` (after consolidation made it
    /// redundant); the slot keeps its spare page for reuse.
    pub fn evict(&mut self, sid: SlotId) {
        if let Some(entry) = self.slots[sid as usize].entry.take() {
            assert!(
                entry.committed.is_zero() && entry.core_refs == 0,
                "evicting a live SSP cache entry"
            );
            self.by_vpn.remove(&entry.vpn.raw());
            self.dirty.insert(sid);
        }
    }

    /// Writes every stale slot's persistent image (checkpointing's fold
    /// step) and returns how many slots were written.
    pub fn checkpoint(&mut self, machine: &mut Machine) -> usize {
        // Sorted: the set's hash order varies per instance, and the
        // checkpoint's persist order reaches the row-buffer model. The
        // drain goes through a reusable scratch vector so periodic
        // checkpoints stop allocating.
        let mut dirty = std::mem::take(&mut self.checkpoint_scratch);
        dirty.clear();
        dirty.extend(self.dirty.drain());
        dirty.sort_unstable();
        let count = dirty.len();
        for &sid in &dirty {
            let addr = self.slot_addr(sid);
            let image = self.encode_slot(sid);
            machine.persist_bytes(None, addr, &image, WriteClass::Checkpoint);
        }
        self.checkpoint_scratch = dirty;
        count
    }

    /// Rebuilds the transient cache from the persistent slot images
    /// (recovery step 1). `slot_count` bounds the scan.
    pub fn recover(&mut self, machine: &Machine, slot_count: usize) {
        self.by_vpn.clear();
        self.recency.clear();
        self.dirty.clear();
        self.slots.clear();
        for i in 0..slot_count {
            let mut image = [0u8; SLOT_BYTES as usize];
            machine.read_bytes_uncached(self.slot_addr(i as SlotId), &mut image);
            let vpn = u64::from_le_bytes(image[0..8].try_into().unwrap());
            let ppn0 = u64::from_le_bytes(image[8..16].try_into().unwrap());
            let ppn1 = u64::from_le_bytes(image[16..24].try_into().unwrap());
            let committed = u64::from_le_bytes(image[24..32].try_into().unwrap());
            let spare = if ppn1 != 0 {
                Ppn::new(ppn1)
            } else {
                self.layout.shadow_page(i as u64)
            };
            let entry = if vpn != 0 {
                self.by_vpn.insert(vpn, i as SlotId);
                Some(SspEntry {
                    vpn: Vpn::new(vpn),
                    ppn0: Ppn::new(ppn0),
                    ppn1: Ppn::new(ppn1),
                    committed: LineBitmap::from_raw(committed),
                    // The current bitmap is initialised from the committed
                    // bitmap (Section 4.4).
                    current: LineBitmap::from_raw(committed),
                    core_refs: 0,
                    consolidating: false,
                })
            } else {
                None
            };
            self.slots.push(Slot { spare, entry });
        }
    }

    /// Iterates over active entries.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &SspEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.entry.as_ref().map(|e| (i as SlotId, e)))
    }

    fn slot_addr(&self, sid: SlotId) -> PhysAddr {
        self.layout.meta_addr(sid as u64 * SLOT_BYTES)
    }

    fn encode_slot(&self, sid: SlotId) -> [u8; SLOT_BYTES as usize] {
        let mut image = [0u8; SLOT_BYTES as usize];
        let slot = &self.slots[sid as usize];
        match &slot.entry {
            Some(e) => {
                image[0..8].copy_from_slice(&e.vpn.raw().to_le_bytes());
                image[8..16].copy_from_slice(&e.ppn0.raw().to_le_bytes());
                image[16..24].copy_from_slice(&e.ppn1.raw().to_le_bytes());
                image[24..32].copy_from_slice(&e.committed.raw().to_le_bytes());
            }
            None => {
                // vpn 0 marks an empty slot; preserve the spare page.
                image[16..24].copy_from_slice(&slot.spare.raw().to_le_bytes());
            }
        }
        image
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_simulator::config::MachineConfig;
    use ssp_txn::vm::HEAP_BASE_VPN;

    fn setup(slots: usize) -> (Machine, SspCache) {
        let machine = Machine::new(MachineConfig::default());
        let cache = SspCache::new(NvLayout::default(), slots, &SspConfig::default());
        (machine, cache)
    }

    fn vpn(i: u64) -> Vpn {
        Vpn::new(HEAP_BASE_VPN + i)
    }

    #[test]
    fn allocate_assigns_distinct_spares() {
        let (_, mut cache) = setup(4);
        let holders = FxHashMap::default();
        let (s1, p1) = cache.allocate(vpn(1), Ppn::new(1000), &holders);
        let (s2, p2) = cache.allocate(vpn(2), Ppn::new(1001), &holders);
        assert_ne!(s1, s2);
        assert_ne!(p1, p2);
        assert_eq!(cache.sid_of(vpn(1)), Some(s1));
        assert_eq!(cache.entry(s1).unwrap().ppn1, p1);
    }

    #[test]
    fn allocate_evicts_consolidated_entries() {
        let (_, mut cache) = setup(1);
        let holders = FxHashMap::default();
        let (s1, _) = cache.allocate(vpn(1), Ppn::new(1000), &holders);
        // Entry is consolidated (committed == 0) and unreferenced, so it can
        // be replaced.
        let (s2, _) = cache.allocate(vpn(2), Ppn::new(1001), &holders);
        assert_eq!(s1, s2);
        assert_eq!(cache.sid_of(vpn(1)), None);
        assert_eq!(cache.grown_slots(), 0);
    }

    #[test]
    fn allocate_grows_when_entries_are_live() {
        let (_, mut cache) = setup(1);
        let holders = FxHashMap::default();
        let (s1, _) = cache.allocate(vpn(1), Ppn::new(1000), &holders);
        cache.entry_mut(s1).unwrap().committed = LineBitmap::from_raw(1);
        let (s2, _) = cache.allocate(vpn(2), Ppn::new(1001), &holders);
        assert_ne!(s1, s2);
        assert_eq!(cache.grown_slots(), 1);
        assert_eq!(cache.sid_of(vpn(1)), Some(s1));
    }

    #[test]
    fn tlb_held_entries_are_not_evicted() {
        let (_, mut cache) = setup(1);
        let mut holders = FxHashMap::default();
        let (_, _) = cache.allocate(vpn(1), Ppn::new(1000), &holders);
        holders.insert(vpn(1).raw(), 0b1); // core 0 still maps it
        let (s2, _) = cache.allocate(vpn(2), Ppn::new(1001), &holders);
        assert_eq!(cache.sid_of(vpn(1)), Some(0));
        assert_ne!(s2, 0);
    }

    #[test]
    fn latency_model_l3_vs_dram() {
        let cfg = MachineConfig::default();
        let ssp_cfg = SspConfig {
            ssp_cache_l3_entries: 1,
            ..SspConfig::default()
        };
        let mut cache = SspCache::new(NvLayout::default(), 4, &ssp_cfg);
        let holders = FxHashMap::default();
        let (s1, _) = cache.allocate(vpn(1), Ppn::new(1000), &holders);
        let (s2, _) = cache.allocate(vpn(2), Ppn::new(1001), &holders);
        // First access: cold (not in recency window) -> DRAM.
        assert_eq!(cache.access_cycles(s1, &cfg), cfg.ns_to_cycles(50.0));
        // Immediately again: MRU position 0 < 1 -> L3.
        assert_eq!(cache.access_cycles(s1, &cfg), cfg.l3.latency_cycles);
        // s2 pushes s1 out of the single-entry window.
        let _ = cache.access_cycles(s2, &cfg);
        assert_eq!(cache.access_cycles(s1, &cfg), cfg.ns_to_cycles(50.0));
    }

    #[test]
    fn latency_override_wins() {
        let cfg = MachineConfig::default();
        let ssp_cfg = SspConfig {
            meta_latency_override: Some(140),
            ..SspConfig::default()
        };
        let mut cache = SspCache::new(NvLayout::default(), 4, &ssp_cfg);
        let holders = FxHashMap::default();
        let (s1, _) = cache.allocate(vpn(1), Ppn::new(1000), &holders);
        assert_eq!(cache.access_cycles(s1, &cfg), 140);
        assert_eq!(cache.access_cycles(s1, &cfg), 140);
    }

    #[test]
    fn checkpoint_and_recover_round_trip() {
        let (mut m, mut cache) = setup(4);
        let holders = FxHashMap::default();
        let (s1, _) = cache.allocate(vpn(1), Ppn::new(1000), &holders);
        cache.entry_mut(s1).unwrap().committed = LineBitmap::from_raw(0xdead);
        cache.entry_mut(s1).unwrap().current = LineBitmap::from_raw(0xffff);
        let written = cache.checkpoint(&mut m);
        assert!(written >= 1);
        m.crash();

        let mut cache2 = SspCache::new(NvLayout::default(), 4, &SspConfig::default());
        cache2.recover(&m, 4);
        let (e, sid) = cache2.entry_by_vpn(vpn(1)).unwrap();
        assert_eq!(sid, s1);
        assert_eq!(e.committed, LineBitmap::from_raw(0xdead));
        // Current is re-initialised from committed, not from the lost
        // transient value.
        assert_eq!(e.current, LineBitmap::from_raw(0xdead));
        assert_eq!(e.core_refs, 0);
    }

    #[test]
    fn checkpoint_writes_are_counted() {
        let (mut m, mut cache) = setup(2);
        let holders = FxHashMap::default();
        let (_, _) = cache.allocate(vpn(1), Ppn::new(1000), &holders);
        cache.checkpoint(&mut m);
        assert!(m.stats().nvram_writes(WriteClass::Checkpoint) >= 1);
    }

    #[test]
    fn spare_page_survives_eviction() {
        let (mut m, mut cache) = setup(1);
        let holders = FxHashMap::default();
        let (s1, spare1) = cache.allocate(vpn(1), Ppn::new(1000), &holders);
        cache.evict(s1);
        cache.checkpoint(&mut m);
        m.crash();
        let mut cache2 = SspCache::new(NvLayout::default(), 1, &SspConfig::default());
        cache2.recover(&m, 1);
        let holders = FxHashMap::default();
        let (_, spare2) = cache2.allocate(vpn(2), Ppn::new(1001), &holders);
        assert_eq!(spare1, spare2);
    }

    #[test]
    #[should_panic(expected = "live SSP cache entry")]
    fn evicting_live_entry_panics() {
        let (_, mut cache) = setup(1);
        let holders = FxHashMap::default();
        let (s1, _) = cache.allocate(vpn(1), Ppn::new(1000), &holders);
        cache.entry_mut(s1).unwrap().committed = LineBitmap::from_raw(2);
        cache.evict(s1);
    }

    #[test]
    fn entry_line_addressing() {
        use ssp_simulator::addr::LineIdx;
        let e = SspEntry {
            vpn: vpn(0),
            ppn0: Ppn::new(100),
            ppn1: Ppn::new(200),
            committed: LineBitmap::ZERO,
            current: LineBitmap::from_raw(0b10),
            core_refs: 0,
            consolidating: false,
        };
        assert_eq!(e.current_line_addr(LineIdx::new(0)).ppn(), Ppn::new(100));
        assert_eq!(e.current_line_addr(LineIdx::new(1)).ppn(), Ppn::new(200));
        assert_eq!(e.other_line_addr(LineIdx::new(1)).ppn(), Ppn::new(100));
    }
}
