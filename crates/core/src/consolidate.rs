//! Page consolidation (Section 3.4 of the paper).
//!
//! When a virtual page is no longer referenced by any TLB and has no
//! in-flight transactional updates, its two physical pages are merged into
//! one so the 2× capacity overhead only applies to actively-updated pages.
//! The side holding *fewer* committed lines is copied into the other; if
//! the shadow page wins, the page roles swap and the virtual mapping is
//! repointed. The result is made durable with a single `Remap` journal
//! record — crash-safe because the copy only ever overwrites non-committed
//! line slots.

use ssp_simulator::machine::Machine;
use ssp_simulator::stats::WriteClass;
use ssp_txn::vm::VmManager;

use crate::bitmap::LineBitmap;
use crate::journal::{MetaJournal, Record, SlotId};
use crate::ssp_cache::SspCache;

/// Statistics of the consolidation machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsolidationStats {
    /// Pages consolidated (including trivial ones with nothing to copy).
    pub pages: u64,
    /// Cache lines copied between the physical pages.
    pub lines_copied: u64,
    /// Consolidations that swapped the page roles (shadow page won).
    pub swaps: u64,
}

/// The consolidation engine: a queue plus the merge routine.
///
/// The paper performs merges on a background OS thread; the simulator runs
/// them synchronously but does **not** charge their latency to any core —
/// only their NVRAM writes are counted (class
/// [`WriteClass::Consolidation`]).
#[derive(Debug, Clone)]
pub struct Consolidator {
    queue: Vec<SlotId>,
    stats: ConsolidationStats,
    /// Cache lines per tracked sub-page bit (Section 4.3; 1 = base design).
    lines_per_subpage: u8,
}

impl Default for Consolidator {
    fn default() -> Self {
        Self::new()
    }
}

impl Consolidator {
    /// Creates an idle consolidator for 64 B sub-pages.
    pub fn new() -> Self {
        Self::with_subpage(1)
    }

    /// Creates a consolidator for `lines_per_subpage`-line sub-pages.
    pub fn with_subpage(lines_per_subpage: usize) -> Self {
        Self {
            queue: Vec::new(),
            stats: ConsolidationStats::default(),
            lines_per_subpage: lines_per_subpage.max(1) as u8,
        }
    }

    /// Consolidation statistics so far.
    pub fn stats(&self) -> ConsolidationStats {
        self.stats
    }

    /// Number of queued pages (nonzero only mid-drain).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues slot `sid` if its page is inactive (no TLB holds it, no
    /// core has uncommitted updates) and not already queued.
    pub fn enqueue_if_inactive(&mut self, cache: &mut SspCache, sid: SlotId, tlb_holders: u64) {
        let Some(entry) = cache.entry(sid) else {
            return;
        };
        if tlb_holders != 0 || entry.core_refs != 0 || entry.consolidating {
            return;
        }
        if let Some(e) = cache.entry_mut(sid) {
            e.consolidating = true;
        }
        self.queue.push(sid);
    }

    /// Drains the queue, merging every queued page.
    pub fn drain(
        &mut self,
        machine: &mut Machine,
        cache: &mut SspCache,
        vm: &mut VmManager,
        journal: &mut MetaJournal,
    ) {
        while let Some(sid) = self.queue.pop() {
            self.consolidate_one(machine, cache, vm, journal, sid);
        }
    }

    /// Merges one page. The slot keeps its entry (with `committed == 0`)
    /// so it can be cheaply evicted or reused.
    fn consolidate_one(
        &mut self,
        machine: &mut Machine,
        cache: &mut SspCache,
        vm: &mut VmManager,
        journal: &mut MetaJournal,
        sid: SlotId,
    ) {
        let Some(entry) = cache.entry(sid) else {
            return;
        };
        let (vpn, ppn0, ppn1, committed) = (entry.vpn, entry.ppn0, entry.ppn1, entry.committed);
        self.stats.pages += 1;

        let in_p1 = committed.count_ones();
        let in_p0 = committed.count_zeros();

        if in_p1 == 0 {
            // Everything already lives in P0: nothing to copy, no metadata
            // change needed beyond clearing the flag.
            let e = cache.entry_mut(sid).expect("entry exists");
            e.consolidating = false;
            return;
        }

        let (winner, loser, copy_mask, swapped) = if in_p1 <= in_p0 {
            // Copy P1's committed lines into P0.
            (ppn0, ppn1, committed, false)
        } else {
            // Copy P0's committed lines into P1 and swap roles.
            (ppn1, ppn0, !committed, true)
        };

        let lps = self.lines_per_subpage;
        for bit in copy_mask.iter_ones() {
            for j in 0..lps {
                let line = ssp_simulator::addr::LineIdx::new(bit.raw() * lps + j);
                // The committed copy of `line` is on the loser side; its
                // slot on the winner side holds stale data, so the copy is
                // non-destructive and crash-safe. The background thread
                // copies through the cache, so the merged line stays
                // resident in L3 (stale copies of the overwritten identity
                // are dropped by the install).
                let data = machine.read_line_uncached(loser.line_addr(line));
                let fallout = machine.install_line_cached(
                    winner.line_addr(line),
                    data,
                    WriteClass::Consolidation,
                );
                // Set-pressure fallout: under SSP, writing a displaced TX
                // line home is always safe (its home is the non-committed
                // copy).
                for ev in fallout.tx_evictions {
                    machine.persist_bytes(None, ev.line, &ev.data, WriteClass::Data);
                }
                self.stats.lines_copied += 1;
            }
        }

        // Durable cut: the Remap record (journal flush is controller-side;
        // no core is charged).
        journal.append(Record::Remap {
            sid,
            vpn,
            ppn0: winner,
            ppn1: loser,
        });
        journal.flush(machine, None);

        // Repoint the virtual mapping if the shadow side won.
        if swapped {
            vm.update_mapping(machine, vpn, winner);
            cache.set_spare(sid, loser);
            self.stats.swaps += 1;
        }

        let e = cache.entry_mut(sid).expect("entry exists");
        e.ppn0 = winner;
        e.ppn1 = loser;
        e.committed = LineBitmap::ZERO;
        e.current = LineBitmap::ZERO;
        e.consolidating = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_simulator::addr::LineIdx;
    use ssp_simulator::cache::CoreId;
    use ssp_simulator::config::MachineConfig;
    use ssp_txn::vm::NvLayout;

    use crate::config::SspConfig;

    struct Rig {
        machine: Machine,
        cache: SspCache,
        vm: VmManager,
        journal: MetaJournal,
        consolidator: Consolidator,
    }

    fn setup() -> Rig {
        let machine = Machine::new(MachineConfig::default());
        let layout = NvLayout::default();
        Rig {
            machine,
            cache: SspCache::new(layout, 8, &SspConfig::default()),
            vm: VmManager::new(layout),
            journal: MetaJournal::new(layout, 1024 * 1024),
            consolidator: Consolidator::new(),
        }
    }

    /// Maps a page, gives it a slot, and writes recognisable data so the
    /// merge can be checked: committed lines (per `committed`) carry value
    /// 0xB1 on P1; all other line slots carry 0xA0 on P0.
    fn prepare_page(rig: &mut Rig, committed: LineBitmap) -> (SlotId, u64) {
        let vpn = rig.vm.map_new_page(&mut rig.machine, CoreId::new(0));
        let ppn0 = rig.vm.translate(vpn).unwrap();
        let holders = fxhash::FxHashMap::default();
        let (sid, ppn1) = rig.cache.allocate(vpn, ppn0, &holders);
        for line in LineIdx::all() {
            if committed.get(line) {
                rig.machine.persist_bytes(
                    None,
                    ppn1.line_addr(line),
                    &[0xb1; 64],
                    WriteClass::Data,
                );
            } else {
                rig.machine.persist_bytes(
                    None,
                    ppn0.line_addr(line),
                    &[0xa0; 64],
                    WriteClass::Data,
                );
            }
        }
        let e = rig.cache.entry_mut(sid).unwrap();
        e.committed = committed;
        e.current = committed;
        (sid, vpn.raw())
    }

    fn run(rig: &mut Rig, sid: SlotId) {
        rig.consolidator.enqueue_if_inactive(&mut rig.cache, sid, 0);
        let Rig {
            machine,
            cache,
            vm,
            journal,
            consolidator,
        } = rig;
        consolidator.drain(machine, cache, vm, journal);
    }

    #[test]
    fn few_p1_lines_merge_into_p0() {
        let mut rig = setup();
        let committed = LineBitmap::from_raw(0b111); // 3 lines in P1
        let (sid, vpn_raw) = prepare_page(&mut rig, committed);
        let ppn0 = rig.cache.entry(sid).unwrap().ppn0;
        run(&mut rig, sid);
        let stats = rig.consolidator.stats();
        assert_eq!(stats.pages, 1);
        assert_eq!(stats.lines_copied, 3);
        assert_eq!(stats.swaps, 0);
        // Mapping unchanged; all committed data now on P0.
        assert_eq!(
            rig.vm.translate(ssp_simulator::addr::Vpn::new(vpn_raw)),
            Some(ppn0)
        );
        for line in LineIdx::all() {
            let mut buf = [0u8; 1];
            rig.machine
                .read_bytes_uncached(ppn0.line_addr(line), &mut buf);
            let expect = if committed.get(line) { 0xb1 } else { 0xa0 };
            assert_eq!(buf[0], expect, "line {line}");
        }
        let e = rig.cache.entry(sid).unwrap();
        assert!(e.committed.is_zero());
        assert!(!e.consolidating);
        assert_eq!(
            rig.machine.stats().nvram_writes(WriteClass::Consolidation),
            3
        );
    }

    #[test]
    fn many_p1_lines_swap_roles() {
        let mut rig = setup();
        let committed = !LineBitmap::from_raw(0b1); // 63 lines in P1
        let (sid, vpn_raw) = prepare_page(&mut rig, committed);
        let old_p1 = rig.cache.entry(sid).unwrap().ppn1;
        run(&mut rig, sid);
        let stats = rig.consolidator.stats();
        assert_eq!(stats.lines_copied, 1); // only line 0 copied from P0
        assert_eq!(stats.swaps, 1);
        // Mapping now points at the former shadow page.
        assert_eq!(
            rig.vm.translate(ssp_simulator::addr::Vpn::new(vpn_raw)),
            Some(old_p1)
        );
        let e = rig.cache.entry(sid).unwrap();
        assert_eq!(e.ppn0, old_p1);
        for line in LineIdx::all() {
            let mut buf = [0u8; 1];
            rig.machine
                .read_bytes_uncached(old_p1.line_addr(line), &mut buf);
            let expect = if committed.get(line) { 0xb1 } else { 0xa0 };
            assert_eq!(buf[0], expect, "line {line}");
        }
    }

    #[test]
    fn already_consolidated_page_copies_nothing() {
        let mut rig = setup();
        let (sid, _) = prepare_page(&mut rig, LineBitmap::ZERO);
        let before = rig.machine.stats().nvram_writes(WriteClass::Consolidation);
        run(&mut rig, sid);
        assert_eq!(
            rig.machine.stats().nvram_writes(WriteClass::Consolidation),
            before
        );
        assert_eq!(rig.consolidator.stats().lines_copied, 0);
    }

    #[test]
    fn active_pages_are_not_enqueued() {
        let mut rig = setup();
        let (sid, _) = prepare_page(&mut rig, LineBitmap::from_raw(1));
        // TLB still holds the page.
        rig.consolidator
            .enqueue_if_inactive(&mut rig.cache, sid, 0b1);
        assert_eq!(rig.consolidator.queued(), 0);
        // Core has uncommitted updates.
        rig.cache.entry_mut(sid).unwrap().core_refs = 0b1;
        rig.consolidator.enqueue_if_inactive(&mut rig.cache, sid, 0);
        assert_eq!(rig.consolidator.queued(), 0);
    }

    #[test]
    fn double_enqueue_is_idempotent() {
        let mut rig = setup();
        let (sid, _) = prepare_page(&mut rig, LineBitmap::from_raw(1));
        rig.consolidator.enqueue_if_inactive(&mut rig.cache, sid, 0);
        rig.consolidator.enqueue_if_inactive(&mut rig.cache, sid, 0);
        assert_eq!(rig.consolidator.queued(), 1);
    }

    #[test]
    fn remap_record_written_and_durable() {
        let mut rig = setup();
        let (sid, vpn_raw) = prepare_page(&mut rig, LineBitmap::from_raw(0b11));
        run(&mut rig, sid);
        rig.machine.crash();
        let mut j = MetaJournal::new(NvLayout::default(), 1024 * 1024);
        j.recover(&rig.machine);
        let live = j.read_live(&rig.machine);
        assert!(live.iter().any(|r| matches!(
            r,
            Record::Remap { sid: s, vpn, .. } if *s == sid && vpn.raw() == vpn_raw
        )));
    }
}
