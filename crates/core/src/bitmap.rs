//! Per-page line bitmaps.
//!
//! SSP tracks the state of each cache line in a 4 KiB page with one bit per
//! line (64 lines → one `u64`). Three bitmaps exist per actively-updated
//! page: *current* (which physical copy holds the freshest data), *updated*
//! (the transaction's write set) and *committed* (which copy holds the
//! durable data) — Section 3.2 of the paper.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

use ssp_simulator::addr::{LineIdx, LINES_PER_PAGE};

/// A 64-bit bitmap with one bit per cache line of a page.
///
/// # Examples
///
/// ```
/// use ssp_core::bitmap::LineBitmap;
/// use ssp_simulator::addr::LineIdx;
///
/// let mut b = LineBitmap::ZERO;
/// b.set(LineIdx::new(3));
/// assert!(b.get(LineIdx::new(3)));
/// assert_eq!(b.count_ones(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LineBitmap(pub u64);

impl LineBitmap {
    /// All bits clear.
    pub const ZERO: LineBitmap = LineBitmap(0);
    /// All bits set.
    pub const FULL: LineBitmap = LineBitmap(u64::MAX);

    /// Creates a bitmap from its raw representation.
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the bit for `line`.
    pub const fn get(self, line: LineIdx) -> bool {
        (self.0 >> line.raw()) & 1 == 1
    }

    /// Sets the bit for `line`.
    pub fn set(&mut self, line: LineIdx) {
        self.0 |= 1 << line.raw();
    }

    /// Clears the bit for `line`.
    pub fn clear(&mut self, line: LineIdx) {
        self.0 &= !(1 << line.raw());
    }

    /// Flips the bit for `line`.
    pub fn flip(&mut self, line: LineIdx) {
        self.0 ^= 1 << line.raw();
    }

    /// Number of set bits.
    pub const fn count_ones(self) -> u32 {
        self.0.count_ones()
    }

    /// Number of clear bits.
    pub const fn count_zeros(self) -> u32 {
        self.0.count_zeros()
    }

    /// Whether no bit is set.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the indices of set bits, ascending.
    pub fn iter_ones(self) -> impl Iterator<Item = LineIdx> {
        (0..LINES_PER_PAGE as u8)
            .filter(move |&i| (self.0 >> i) & 1 == 1)
            .map(LineIdx::new)
    }

    /// Iterates over the indices of clear bits, ascending.
    pub fn iter_zeros(self) -> impl Iterator<Item = LineIdx> {
        (0..LINES_PER_PAGE as u8)
            .filter(move |&i| (self.0 >> i) & 1 == 0)
            .map(LineIdx::new)
    }

    /// The commit rule of Section 3.2: bits in `updated` take their value
    /// from `current`; other bits keep their committed value.
    pub fn commit_merge(committed: LineBitmap, current: LineBitmap, updated: LineBitmap) -> Self {
        LineBitmap((committed.0 & !updated.0) | (current.0 & updated.0))
    }
}

impl BitAnd for LineBitmap {
    type Output = LineBitmap;
    fn bitand(self, rhs: Self) -> Self {
        LineBitmap(self.0 & rhs.0)
    }
}

impl BitOr for LineBitmap {
    type Output = LineBitmap;
    fn bitor(self, rhs: Self) -> Self {
        LineBitmap(self.0 | rhs.0)
    }
}

impl BitXor for LineBitmap {
    type Output = LineBitmap;
    fn bitxor(self, rhs: Self) -> Self {
        LineBitmap(self.0 ^ rhs.0)
    }
}

impl Not for LineBitmap {
    type Output = LineBitmap;
    fn not(self) -> Self {
        LineBitmap(!self.0)
    }
}

impl fmt::Display for LineBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::Binary for LineBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for LineBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_flip() {
        let mut b = LineBitmap::ZERO;
        let l = LineIdx::new(42);
        assert!(!b.get(l));
        b.set(l);
        assert!(b.get(l));
        b.flip(l);
        assert!(!b.get(l));
        b.flip(l);
        b.clear(l);
        assert!(!b.get(l));
        assert!(b.is_zero());
    }

    #[test]
    fn counts() {
        let b = LineBitmap::from_raw(0b1011);
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.count_zeros(), 61);
        assert_eq!(LineBitmap::FULL.count_ones(), 64);
    }

    #[test]
    fn iter_ones_matches_bits() {
        let b = LineBitmap::from_raw((1 << 0) | (1 << 7) | (1 << 63));
        let ones: Vec<u8> = b.iter_ones().map(LineIdx::raw).collect();
        assert_eq!(ones, vec![0, 7, 63]);
        assert_eq!(b.iter_zeros().count(), 61);
    }

    #[test]
    fn commit_merge_rule() {
        // committed: lines 0,1 in P1; current: line 2 flipped to P1 by this
        // txn, line 1 flipped back to P0 by this txn; updated: lines 1,2.
        let committed = LineBitmap::from_raw(0b011);
        let current = LineBitmap::from_raw(0b101);
        let updated = LineBitmap::from_raw(0b110);
        let merged = LineBitmap::commit_merge(committed, current, updated);
        // line 0: keep committed (1); line 1: take current (0); line 2: take
        // current (1).
        assert_eq!(merged.raw(), 0b101);
    }

    #[test]
    fn commit_merge_ignores_other_threads_lines() {
        // Another thread flipped line 5 (in current) but our updated set
        // only contains line 0 — its speculative flip must not leak into our
        // committed bitmap.
        let committed = LineBitmap::ZERO;
        let current = LineBitmap::from_raw((1 << 5) | 1);
        let updated = LineBitmap::from_raw(1);
        let merged = LineBitmap::commit_merge(committed, current, updated);
        assert_eq!(merged.raw(), 1);
    }

    #[test]
    fn bit_operators() {
        let a = LineBitmap::from_raw(0b1100);
        let b = LineBitmap::from_raw(0b1010);
        assert_eq!((a & b).raw(), 0b1000);
        assert_eq!((a | b).raw(), 0b1110);
        assert_eq!((a ^ b).raw(), 0b0110);
        assert_eq!((!LineBitmap::ZERO), LineBitmap::FULL);
    }

    #[test]
    fn formatting() {
        let b = LineBitmap::from_raw(5);
        assert_eq!(format!("{b}"), "0x0000000000000005");
        assert_eq!(format!("{b:b}"), "101");
        assert_eq!(format!("{b:x}"), "5");
    }
}
