//! The software fall-back path (Section 3.5 of the paper).
//!
//! SSP's hardware write-set buffer bounds the pages a transaction may
//! touch; overflowing it transfers the overflowing updates to an unbounded
//! software **undo log**. Updates beyond the buffer are performed in place
//! at the committed location, protected by an undo record persisted
//! *before* the in-place store (classic write-ahead undo logging).
//!
//! Durability is still cut by the metadata journal's `CommitMark`: at
//! recovery, undo records whose transaction has no mark are rolled back,
//! so the hardware-tracked and software-tracked parts of one transaction
//! commit or vanish together.

use ssp_simulator::addr::{PhysAddr, VirtAddr, LINE_SIZE};
use ssp_simulator::cache::CoreId;
use ssp_simulator::machine::Machine;
use ssp_simulator::stats::WriteClass;
use ssp_txn::vm::NvLayout;

/// Byte offset of the fall-back log within the log region (the metadata
/// journal owns the first half).
const FB_REGION_OFFSET: u64 = 32 * 1024 * 1024;
/// Header offset of the persisted fall-back head pointer.
const HDR_FB_HEAD: u64 = 80;

/// Size of one undo record: tid(4) + vaddr(8) + paddr(8) + data(64) = 84,
/// padded to 96 so records stay line-friendly.
pub const UNDO_RECORD_BYTES: u64 = 96;

/// One decoded undo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoRecord {
    /// Owning transaction.
    pub tid: u32,
    /// Virtual line address of the update.
    pub vaddr: VirtAddr,
    /// Physical (committed-copy) line address updated in place.
    pub paddr: PhysAddr,
    /// The pre-image of the full line.
    pub old_data: [u8; LINE_SIZE],
}

/// The unbounded software undo log backing the fall-back path.
#[derive(Debug, Clone)]
pub struct FallbackLog {
    layout: NvLayout,
    /// Persisted append offset (bytes past the region base).
    head: u64,
}

impl FallbackLog {
    /// Opens the log over `layout`.
    pub fn new(layout: NvLayout) -> Self {
        Self { layout, head: 0 }
    }

    /// Number of live undo records.
    pub fn len(&self) -> usize {
        (self.head / UNDO_RECORD_BYTES) as usize
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.head == 0
    }

    /// Appends and immediately persists an undo record, charging the
    /// blocking persist latency to `core` — the fall-back path is slow by
    /// design.
    pub fn append(&mut self, machine: &mut Machine, core: CoreId, record: &UndoRecord) {
        let mut buf = [0u8; UNDO_RECORD_BYTES as usize];
        buf[0..4].copy_from_slice(&record.tid.to_le_bytes());
        buf[4..12].copy_from_slice(&record.vaddr.raw().to_le_bytes());
        buf[12..20].copy_from_slice(&record.paddr.raw().to_le_bytes());
        buf[20..20 + LINE_SIZE].copy_from_slice(&record.old_data);
        let addr = self.record_addr(self.head);
        machine.persist_bytes(Some(core), addr, &buf, WriteClass::Log);
        self.head += UNDO_RECORD_BYTES;
        machine.persist_bytes(
            Some(core),
            self.layout.header_addr(HDR_FB_HEAD),
            &self.head.to_le_bytes(),
            WriteClass::Log,
        );
    }

    /// Reads all live records (oldest first).
    pub fn read_all(&self, machine: &Machine) -> Vec<UndoRecord> {
        let mut records = Vec::with_capacity(self.len());
        let mut offset = 0;
        while offset < self.head {
            let mut buf = [0u8; UNDO_RECORD_BYTES as usize];
            machine.read_bytes_uncached(self.record_addr(offset), &mut buf);
            let tid = u32::from_le_bytes(buf[0..4].try_into().unwrap());
            let vaddr = VirtAddr::new(u64::from_le_bytes(buf[4..12].try_into().unwrap()));
            let paddr = PhysAddr::new(u64::from_le_bytes(buf[12..20].try_into().unwrap()));
            let mut old_data = [0u8; LINE_SIZE];
            old_data.copy_from_slice(&buf[20..20 + LINE_SIZE]);
            records.push(UndoRecord {
                tid,
                vaddr,
                paddr,
                old_data,
            });
            offset += UNDO_RECORD_BYTES;
        }
        records
    }

    /// Truncates the log (after commit or rollback) and persists the empty
    /// head pointer.
    pub fn reset(&mut self, machine: &mut Machine, core: Option<CoreId>) {
        self.head = 0;
        machine.persist_bytes(
            core,
            self.layout.header_addr(HDR_FB_HEAD),
            &0u64.to_le_bytes(),
            WriteClass::Log,
        );
    }

    /// Re-reads the persisted head pointer after a crash.
    pub fn recover(&mut self, machine: &Machine) {
        let mut buf = [0u8; 8];
        machine.read_bytes_uncached(self.layout.header_addr(HDR_FB_HEAD), &mut buf);
        self.head = u64::from_le_bytes(buf);
    }

    fn record_addr(&self, offset: u64) -> PhysAddr {
        // Records are 96 B and may straddle a page boundary; persist_bytes
        // requires page-contained ranges, so records are laid out to never
        // cross a page: 42 records fit a page (4032 B), the remainder is
        // skipped.
        let per_page = (4096 / UNDO_RECORD_BYTES) * UNDO_RECORD_BYTES;
        let page = offset / per_page;
        let within = offset % per_page;
        self.layout
            .log_addr(FB_REGION_OFFSET + page * 4096 + within)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_simulator::config::MachineConfig;

    fn setup() -> (Machine, FallbackLog) {
        (
            Machine::new(MachineConfig::default()),
            FallbackLog::new(NvLayout::default()),
        )
    }

    fn record(tid: u32, seed: u8) -> UndoRecord {
        UndoRecord {
            tid,
            vaddr: VirtAddr::new(0x10_0000_0000 + seed as u64 * 64),
            paddr: PhysAddr::new(0x20_0000_0000 + seed as u64 * 64),
            old_data: [seed; LINE_SIZE],
        }
    }

    #[test]
    fn append_read_round_trip() {
        let (mut m, mut log) = setup();
        let c = CoreId::new(0);
        log.append(&mut m, c, &record(1, 0xaa));
        log.append(&mut m, c, &record(1, 0xbb));
        let all = log.read_all(&m);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], record(1, 0xaa));
        assert_eq!(all[1], record(1, 0xbb));
    }

    #[test]
    fn records_survive_crash() {
        let (mut m, mut log) = setup();
        log.append(&mut m, CoreId::new(0), &record(7, 0x11));
        m.crash();
        let mut log2 = FallbackLog::new(NvLayout::default());
        log2.recover(&m);
        assert_eq!(log2.len(), 1);
        assert_eq!(log2.read_all(&m)[0].tid, 7);
    }

    #[test]
    fn reset_empties_durably() {
        let (mut m, mut log) = setup();
        log.append(&mut m, CoreId::new(0), &record(1, 0x22));
        log.reset(&mut m, None);
        m.crash();
        let mut log2 = FallbackLog::new(NvLayout::default());
        log2.recover(&m);
        assert!(log2.is_empty());
    }

    #[test]
    fn appends_count_as_log_writes() {
        let (mut m, mut log) = setup();
        log.append(&mut m, CoreId::new(0), &record(1, 0x33));
        assert!(m.stats().nvram_writes(WriteClass::Log) >= 2);
    }

    #[test]
    fn many_records_span_pages() {
        let (mut m, mut log) = setup();
        let c = CoreId::new(0);
        for i in 0..100u32 {
            log.append(&mut m, c, &record(i, i as u8));
        }
        let all = log.read_all(&m);
        assert_eq!(all.len(), 100);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.tid, i as u32);
        }
    }
}
