//! The metadata journal (Section 3.3 / 4.1.2 of the paper).
//!
//! Every update to per-page SSP metadata is first appended as a record to a
//! redo journal in NVRAM; only then may the persistent SSP-cache slots be
//! updated (by checkpointing). Commit-path records are 16 bytes — the
//! paper's "128 bits of metadata for each modified page" — so journaling
//! traffic is tiny compared to data logging.
//!
//! Record kinds:
//!
//! * [`Record::CommitMeta`] — a transaction's new committed bitmap for one
//!   page (16 B).
//! * [`Record::CommitMark`] — the transaction's atomic commit point (8 B).
//! * [`Record::Assign`] — a slot (re)assignment: page pair + slot id
//!   (32 B; written when a page becomes actively updated).
//! * [`Record::Remap`] — a consolidation result: which physical page now
//!   holds all committed data (32 B; doubles as the durable page-table
//!   update).
//!
//! Appends accumulate in a volatile buffer; a *flush* persists the
//! buffered bytes. Records carry the journal's current **epoch** so
//! recovery can find the valid extent without a per-commit head-pointer
//! persist: it scans from the start of the journal area and accepts
//! records until the epoch stops matching (records surviving from before
//! the last checkpoint carry the previous epoch). A transaction is durable
//! exactly when the flush covering its `CommitMark` record completes.
//! Checkpointing folds records into the persistent slot area, rewinds the
//! journal to offset zero and bumps the persisted epoch.

use ssp_simulator::addr::{PhysAddr, Ppn, Vpn};
use ssp_simulator::cache::CoreId;
use ssp_simulator::machine::Machine;
use ssp_simulator::stats::WriteClass;
use ssp_txn::vm::NvLayout;

use crate::bitmap::LineBitmap;

/// Slot index in the SSP cache.
pub type SlotId = u16;

/// Header-region byte offsets used by the journal (the VM manager owns
/// offsets 0..64).
const HDR_JOURNAL_EPOCH: u64 = 64;

const KIND_COMMIT_META: u8 = 1;
const KIND_COMMIT_MARK: u8 = 2;
const KIND_ASSIGN: u8 = 3;
const KIND_REMAP: u8 = 4;

/// One journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    /// New committed bitmap for the page in slot `sid`, part of `tid`.
    CommitMeta {
        /// Slot being updated.
        sid: SlotId,
        /// Owning transaction.
        tid: u32,
        /// The new committed bitmap.
        committed: LineBitmap,
    },
    /// Atomic commit point of `tid`.
    CommitMark {
        /// The committing transaction.
        tid: u32,
    },
    /// Slot `sid` now serves `vpn` with pages `(ppn0, ppn1)`.
    Assign {
        /// Slot being assigned.
        sid: SlotId,
        /// The virtual page.
        vpn: Vpn,
        /// Mapped (original) physical page.
        ppn0: Ppn,
        /// Shadow physical page.
        ppn1: Ppn,
    },
    /// Consolidation finished: `vpn` maps to `ppn0`, all lines committed
    /// there; `ppn1` is the slot's (possibly swapped) spare page.
    Remap {
        /// Slot that was consolidated.
        sid: SlotId,
        /// The virtual page.
        vpn: Vpn,
        /// The winning physical page (now holds all committed lines).
        ppn0: Ppn,
        /// The spare physical page.
        ppn1: Ppn,
    },
}

impl Record {
    /// Serialised size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Record::CommitMeta { .. } => 16,
            Record::CommitMark { .. } => 8,
            Record::Assign { .. } | Record::Remap { .. } => 32,
        }
    }

    fn encode(&self, epoch: u8, out: &mut Vec<u8>) {
        match *self {
            Record::CommitMeta {
                sid,
                tid,
                committed,
            } => {
                out.push(KIND_COMMIT_META);
                out.push(epoch);
                out.extend_from_slice(&sid.to_le_bytes());
                out.extend_from_slice(&tid.to_le_bytes());
                out.extend_from_slice(&committed.raw().to_le_bytes());
            }
            Record::CommitMark { tid } => {
                out.push(KIND_COMMIT_MARK);
                out.push(epoch);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&tid.to_le_bytes());
            }
            Record::Assign {
                sid,
                vpn,
                ppn0,
                ppn1,
            } => {
                out.push(KIND_ASSIGN);
                out.push(epoch);
                out.extend_from_slice(&sid.to_le_bytes());
                out.extend_from_slice(&[0, 0, 0, 0]);
                out.extend_from_slice(&vpn.raw().to_le_bytes());
                out.extend_from_slice(&ppn0.raw().to_le_bytes());
                out.extend_from_slice(&ppn1.raw().to_le_bytes());
            }
            Record::Remap {
                sid,
                vpn,
                ppn0,
                ppn1,
            } => {
                out.push(KIND_REMAP);
                out.push(epoch);
                out.extend_from_slice(&sid.to_le_bytes());
                out.extend_from_slice(&[0, 0, 0, 0]);
                out.extend_from_slice(&vpn.raw().to_le_bytes());
                out.extend_from_slice(&ppn0.raw().to_le_bytes());
                out.extend_from_slice(&ppn1.raw().to_le_bytes());
            }
        }
    }

    fn decode(buf: &[u8]) -> Option<(Record, u8, usize)> {
        let kind = *buf.first()?;
        let epoch = *buf.get(1)?;
        match kind {
            KIND_COMMIT_META if buf.len() >= 16 => {
                let sid = u16::from_le_bytes([buf[2], buf[3]]);
                let tid = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
                let committed =
                    LineBitmap::from_raw(u64::from_le_bytes(buf[8..16].try_into().ok()?));
                Some((
                    Record::CommitMeta {
                        sid,
                        tid,
                        committed,
                    },
                    epoch,
                    16,
                ))
            }
            KIND_COMMIT_MARK if buf.len() >= 8 => {
                let tid = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
                Some((Record::CommitMark { tid }, epoch, 8))
            }
            KIND_ASSIGN | KIND_REMAP if buf.len() >= 32 => {
                let sid = u16::from_le_bytes([buf[2], buf[3]]);
                let vpn = Vpn::new(u64::from_le_bytes(buf[8..16].try_into().ok()?));
                let ppn0 = Ppn::new(u64::from_le_bytes(buf[16..24].try_into().ok()?));
                let ppn1 = Ppn::new(u64::from_le_bytes(buf[24..32].try_into().ok()?));
                let rec = if kind == KIND_ASSIGN {
                    Record::Assign {
                        sid,
                        vpn,
                        ppn0,
                        ppn1,
                    }
                } else {
                    Record::Remap {
                        sid,
                        vpn,
                        ppn0,
                        ppn1,
                    }
                };
                Some((rec, epoch, 32))
            }
            _ => None,
        }
    }
}

/// The metadata journal: a volatile append buffer over an NVRAM area
/// validated by per-record epochs.
#[derive(Debug, Clone)]
pub struct MetaJournal {
    layout: NvLayout,
    capacity: u64,
    /// Volatile append point (byte offset into the journal region);
    /// recovery re-derives it by scanning for the current epoch.
    head: u64,
    /// Current epoch, persisted at each checkpoint.
    epoch: u8,
    /// Records appended but not yet persisted.
    buffer: Vec<u8>,
    /// Records appended since creation/recovery (for tests and stats).
    appended_records: u64,
}

impl MetaJournal {
    /// Opens the journal over `layout` with the given ring capacity.
    pub fn new(layout: NvLayout, capacity: u64) -> Self {
        assert!(
            capacity <= layout.log_capacity() / 2,
            "journal must leave room for the fall-back log"
        );
        Self {
            layout,
            capacity,
            head: 0,
            epoch: 1,
            buffer: Vec::new(),
            appended_records: 0,
        }
    }

    /// Bytes currently live in the journal (excluding the unflushed
    /// buffer).
    pub fn used_bytes(&self) -> u64 {
        self.head
    }

    /// Records appended since creation/recovery.
    pub fn appended_records(&self) -> u64 {
        self.appended_records
    }

    /// Whether a flush is needed before the ring can accept `extra` bytes.
    pub fn needs_checkpoint(&self, threshold: u64) -> bool {
        self.used_bytes() >= threshold
    }

    /// Appends a record to the volatile buffer (not yet durable).
    pub fn append(&mut self, record: Record) {
        record.encode(self.epoch, &mut self.buffer);
        self.appended_records += 1;
    }

    /// Persists the buffered records and then the head pointer. Charges the
    /// persist latency to `core` if given. Returns the number of buffered
    /// bytes persisted.
    ///
    /// # Panics
    ///
    /// Panics if the ring overflows — the engine must checkpoint before
    /// that happens.
    pub fn flush(&mut self, machine: &mut Machine, core: Option<CoreId>) -> usize {
        if self.buffer.is_empty() {
            return 0;
        }
        let len = self.buffer.len() as u64;
        assert!(
            self.head + len <= self.capacity,
            "metadata journal ring overflow; checkpoint was not run"
        );
        // Drain in place (not `mem::take`) so the append buffer keeps its
        // allocation: steady-state commits stop allocating per flush.
        machine.persist_bytes(
            core,
            self.addr(self.head),
            &self.buffer,
            WriteClass::MetaJournal,
        );
        self.head += len;
        self.buffer.clear();
        len as usize
    }

    /// Truncates the journal after a checkpoint: rewinds to offset zero
    /// and bumps the persisted epoch so the surviving bytes are no longer
    /// valid. The caller must already have folded the records into the
    /// persistent slots.
    pub fn truncate(&mut self, machine: &mut Machine) {
        self.head = 0;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epoch = 1; // epoch 0 marks never-written journal bytes
        }
        machine.persist_bytes(
            None,
            self.layout.header_addr(HDR_JOURNAL_EPOCH),
            &[self.epoch],
            WriteClass::Checkpoint,
        );
    }

    /// Reads the valid records back from NVRAM (recovery): scans from the
    /// start of the journal area and accepts records carrying the current
    /// epoch, stopping at the first stale or invalid record.
    pub fn read_live(&self, machine: &Machine) -> Vec<Record> {
        let mut records = Vec::new();
        let mut raw = vec![0u8; self.capacity as usize];
        let mut off = 0usize;
        // Region reads must not span pages.
        while off < raw.len() {
            let addr = self.addr(off as u64);
            let page_left = 4096 - addr.page_offset();
            let chunk = page_left.min(raw.len() - off);
            machine.read_bytes_uncached(addr, &mut raw[off..off + chunk]);
            off += chunk;
        }
        let mut cursor = 0usize;
        while cursor < raw.len() {
            match Record::decode(&raw[cursor..]) {
                Some((rec, epoch, n)) if epoch == self.epoch => {
                    records.push(rec);
                    cursor += n;
                }
                _ => break,
            }
        }
        records
    }

    /// Re-reads the persisted epoch after a crash, re-derives the head by
    /// scanning, and drops any unflushed buffer.
    pub fn recover(&mut self, machine: &Machine) {
        let mut buf = [0u8; 1];
        machine.read_bytes_uncached(self.layout.header_addr(HDR_JOURNAL_EPOCH), &mut buf);
        self.epoch = if buf[0] == 0 { 1 } else { buf[0] };
        self.buffer.clear();
        self.appended_records = 0;
        // Derive the head from the valid extent.
        let live = self.read_live(machine);
        self.head = live.iter().map(|r| r.encoded_len() as u64).sum();
    }

    fn addr(&self, offset: u64) -> PhysAddr {
        self.layout.log_addr(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_simulator::config::MachineConfig;

    fn setup() -> (Machine, MetaJournal) {
        let machine = Machine::new(MachineConfig::default());
        let journal = MetaJournal::new(NvLayout::default(), 1024 * 1024);
        (machine, journal)
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Assign {
                sid: 3,
                vpn: Vpn::new(0x10_0001),
                ppn0: Ppn::new(77),
                ppn1: Ppn::new(88),
            },
            Record::CommitMeta {
                sid: 3,
                tid: 9,
                committed: LineBitmap::from_raw(0b1100),
            },
            Record::CommitMark { tid: 9 },
            Record::Remap {
                sid: 3,
                vpn: Vpn::new(0x10_0001),
                ppn0: Ppn::new(88),
                ppn1: Ppn::new(77),
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for rec in sample_records() {
            let mut buf = Vec::new();
            rec.encode(7, &mut buf);
            assert_eq!(buf.len(), rec.encoded_len());
            let (decoded, epoch, n) = Record::decode(&buf).unwrap();
            assert_eq!(decoded, rec);
            assert_eq!(epoch, 7);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn commit_meta_is_16_bytes() {
        // The paper's "128 bits of metadata for each modified page".
        let rec = Record::CommitMeta {
            sid: 1,
            tid: 2,
            committed: LineBitmap::FULL,
        };
        assert_eq!(rec.encoded_len(), 16);
    }

    #[test]
    fn flush_persists_and_survives_crash() {
        let (mut m, mut j) = setup();
        for rec in sample_records() {
            j.append(rec);
        }
        j.flush(&mut m, None);
        m.crash();
        let mut j2 = MetaJournal::new(NvLayout::default(), 1024 * 1024);
        j2.recover(&m);
        assert_eq!(j2.read_live(&m), sample_records());
    }

    #[test]
    fn unflushed_buffer_lost_in_crash() {
        let (mut m, mut j) = setup();
        j.append(Record::CommitMark { tid: 1 });
        j.flush(&mut m, None);
        j.append(Record::CommitMark { tid: 2 }); // never flushed
        m.crash();
        let mut j2 = MetaJournal::new(NvLayout::default(), 1024 * 1024);
        j2.recover(&m);
        let live = j2.read_live(&m);
        assert_eq!(live, vec![Record::CommitMark { tid: 1 }]);
    }

    #[test]
    fn journal_writes_are_counted_as_meta() {
        let (mut m, mut j) = setup();
        j.append(Record::CommitMark { tid: 7 });
        j.flush(&mut m, None);
        assert!(m.stats().nvram_writes(WriteClass::MetaJournal) >= 1);
        assert_eq!(m.stats().nvram_writes(WriteClass::Log), 0);
    }

    #[test]
    fn truncate_rewinds_past_half_capacity() {
        let (mut m, j) = setup();
        let mut j_small = MetaJournal::new(NvLayout::default(), 1024);
        for _ in 0..80 {
            j_small.append(Record::CommitMark { tid: 1 });
        }
        j_small.flush(&mut m, None);
        assert_eq!(j_small.used_bytes(), 640);
        j_small.truncate(&mut m);
        assert_eq!(j_small.used_bytes(), 0);
        // 640 > 512, so the ring rewound.
        j_small.append(Record::CommitMark { tid: 2 });
        j_small.flush(&mut m, None);
        assert_eq!(j_small.read_live(&m), vec![Record::CommitMark { tid: 2 }]);
        let _ = j;
    }

    #[test]
    fn needs_checkpoint_threshold() {
        let (mut m, mut j) = setup();
        assert!(!j.needs_checkpoint(64));
        for _ in 0..16 {
            j.append(Record::CommitMark { tid: 1 });
        }
        j.flush(&mut m, None);
        assert!(j.needs_checkpoint(64));
    }

    #[test]
    #[should_panic(expected = "ring overflow")]
    fn overflow_panics() {
        let (mut m, _) = setup();
        let mut j = MetaJournal::new(NvLayout::default(), 16);
        for _ in 0..4 {
            j.append(Record::CommitMark { tid: 1 });
        }
        j.flush(&mut m, None);
    }
}
