//! The SSP transaction engine — Shadow Sub-Paging end to end.
//!
//! Implements [`TxnEngine`] with the paper's machinery:
//!
//! * **Atomic update** (Figure 4): the first transactional write to a line
//!   loads the committed copy, *retags* it to the other physical page in
//!   the cache (no data copy through memory), applies the store, flips the
//!   line's current bit and broadcasts `flip-current-bit`.
//! * **Commit**: flush the write-set lines (they sit at the non-committed
//!   locations, so flushing never overwrites durable data), then append
//!   16-byte `CommitMeta` records plus a `CommitMark` to the metadata
//!   journal and persist it — the only redundant NVRAM writes on the
//!   critical path.
//! * **Abort**: discard the speculative cache lines and flip the current
//!   bits back; nothing was written over committed data.
//! * **Consolidation** (Section 3.4) when a page leaves every TLB, and
//!   **checkpointing** of the journal into the persistent SSP cache.
//! * **Fall-back** (Section 3.5): write-set-buffer overflow diverts further
//!   updates to a software undo log, still cut by the same `CommitMark`.

use fxhash::{FxHashMap, FxHashSet};
use ssp_simulator::addr::{LineIdx, PhysAddr, VirtAddr, Vpn, LINE_SIZE};
use ssp_simulator::cache::{CoreId, TxEviction};
use ssp_simulator::config::MachineConfig;
use ssp_simulator::fault::FaultSite;
use ssp_simulator::machine::Machine;
use ssp_simulator::obs::ObsKind;
use ssp_simulator::stats::WriteClass;
use ssp_simulator::tlb::Tlb;
use ssp_txn::engine::{line_spans, sorted_scratch, TxnEngine, TxnStats, WriteSetTracker};
use ssp_txn::vm::{NvLayout, VmManager};

use crate::bitmap::LineBitmap;
use crate::config::SspConfig;
use crate::consolidate::{ConsolidationStats, Consolidator};
use crate::fallback::{FallbackLog, UndoRecord};
use crate::journal::{MetaJournal, Record, SlotId};
use crate::ssp_cache::SspCache;
use crate::write_set::{WriteSetBuffer, WriteSetInsert};

/// Per-core state of an open transaction. The write-set tracker lives in
/// [`Ssp::trackers`] (per core, reused across transactions) so opening a
/// transaction allocates nothing.
#[derive(Debug, Clone)]
struct OpenTxn {
    tid: u32,
    /// Lines updated in place through the fall-back path (vaddr line base).
    fallback_lines: Vec<(VirtAddr, PhysAddr)>,
    overflowed: bool,
}

/// The SSP engine.
///
/// # Examples
///
/// ```
/// use ssp_core::engine::Ssp;
/// use ssp_core::SspConfig;
/// use ssp_simulator::cache::CoreId;
/// use ssp_simulator::config::MachineConfig;
/// use ssp_txn::engine::TxnEngine;
///
/// let mut ssp = Ssp::new(MachineConfig::default(), SspConfig::default());
/// let core = CoreId::new(0);
/// let vpn = ssp.map_new_page(core);
/// let addr = vpn.base();
///
/// ssp.begin(core);
/// ssp.store(core, addr, &42u64.to_le_bytes());
/// ssp.commit(core);
///
/// ssp.crash_and_recover();
/// let mut buf = [0u8; 8];
/// ssp.load(core, addr, &mut buf);
/// assert_eq!(u64::from_le_bytes(buf), 42);
/// ```
#[derive(Debug, Clone)]
pub struct Ssp {
    machine: Machine,
    ssp_cfg: SspConfig,
    vm: VmManager,
    cache: SspCache,
    journal: MetaJournal,
    fallback: FallbackLog,
    consolidator: Consolidator,
    tlbs: Vec<Tlb<()>>,
    /// vpn → bitmask of cores whose TLB maps it (the TLB reference counts).
    /// Fast-hashed and never iterated.
    tlb_holders: FxHashMap<u64, u64>,
    /// Per-core pages with in-flight fall-back (in-place) updates; they
    /// must not be consolidated until the transaction resolves.
    fallback_pages: Vec<FxHashSet<u64>>,
    wsets: Vec<WriteSetBuffer>,
    open: Vec<Option<OpenTxn>>,
    /// Per-core write-set trackers, reused across transactions (cleared,
    /// capacity kept, by the commit/abort folds).
    trackers: Vec<WriteSetTracker>,
    /// Reusable commit/abort scratch: the write-set pages sorted by VPN.
    scratch_pages: Vec<(Vpn, LineBitmap)>,
    /// Reusable commit/abort scratch: fall-back pages released, sorted.
    scratch_released: Vec<u64>,
    stats: TxnStats,
    next_tid: u32,
    checkpoints: u64,
    /// Next unused shadow-pool page for wear-levelling rotation (pages
    /// below the initial slot count are the slots' original spares).
    next_fresh_spare: u64,
    /// Journal records replayed by the most recent [`recover`]; the
    /// recovery-time bench reports this as the simulated replay work.
    ///
    /// [`recover`]: TxnEngine::recover
    last_recovery_replayed: u64,
    /// Encoded bytes of those records — the journal extent recovery had
    /// to scan and apply.
    last_recovery_replayed_bytes: u64,
}

impl Ssp {
    /// Builds an SSP machine.
    pub fn new(cfg: MachineConfig, ssp_cfg: SspConfig) -> Self {
        ssp_cfg.validate();
        let layout = NvLayout::default();
        let slots = ssp_cfg.cache_slots(cfg.cores, cfg.dtlb_entries);
        let tlbs = (0..cfg.cores).map(|_| Tlb::new(cfg.dtlb_entries)).collect();
        let wsets = (0..cfg.cores)
            .map(|_| WriteSetBuffer::new(ssp_cfg.write_set_capacity))
            .collect();
        let open = (0..cfg.cores).map(|_| None).collect();
        let trackers = (0..cfg.cores).map(|_| WriteSetTracker::new()).collect();
        let fallback_pages = (0..cfg.cores).map(|_| Default::default()).collect();
        let journal = MetaJournal::new(layout, ssp_cfg.journal_capacity_bytes);
        Self {
            machine: Machine::new(cfg),
            cache: SspCache::new(layout, slots, &ssp_cfg),
            journal,
            fallback: FallbackLog::new(layout),
            consolidator: Consolidator::with_subpage(ssp_cfg.lines_per_subpage),
            vm: VmManager::new(layout),
            ssp_cfg,
            tlbs,
            tlb_holders: FxHashMap::default(),
            fallback_pages,
            wsets,
            open,
            trackers,
            scratch_pages: Vec::new(),
            scratch_released: Vec::new(),
            stats: TxnStats::default(),
            next_tid: 1,
            checkpoints: 0,
            next_fresh_spare: slots as u64,
            last_recovery_replayed: 0,
            last_recovery_replayed_bytes: 0,
        }
    }

    /// SSP-specific configuration.
    pub fn ssp_config(&self) -> &SspConfig {
        &self.ssp_cfg
    }

    /// Consolidation statistics.
    pub fn consolidation_stats(&self) -> ConsolidationStats {
        self.consolidator.stats()
    }

    /// Number of journal checkpoints performed.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Metadata-journal records appended so far.
    pub fn journal_records(&self) -> u64 {
        self.journal.appended_records()
    }

    /// Bytes currently live in the metadata journal (records not yet
    /// folded into the persistent SSP cache by a checkpoint).
    pub fn journal_live_bytes(&self) -> u64 {
        self.journal.used_bytes()
    }

    /// Journal records replayed by the most recent recovery (zero before
    /// the first crash+recover cycle).
    pub fn last_recovery_replayed(&self) -> u64 {
        self.last_recovery_replayed
    }

    /// Encoded bytes of the journal records replayed by the most recent
    /// recovery — the live journal extent replay scanned and applied.
    pub fn last_recovery_replayed_bytes(&self) -> u64 {
        self.last_recovery_replayed_bytes
    }

    /// How many SSP-cache slots were added beyond the `N×T+O` sizing.
    pub fn ssp_cache_grown(&self) -> usize {
        self.cache.grown_slots()
    }

    /// Number of pages currently occupying *two* physical frames (their
    /// committed bitmap is nonzero) — the capacity overhead consolidation
    /// exists to bound (Section 3.4).
    pub fn pages_holding_two_frames(&self) -> usize {
        self.cache
            .iter()
            .filter(|(_, e)| !e.committed.is_zero())
            .count()
    }

    fn holders(&self, vpn: Vpn) -> u64 {
        self.tlb_holders.get(&vpn.raw()).copied().unwrap_or(0)
    }

    /// The bitmap bit tracking `line` (identity for 64 B sub-pages; a
    /// group index for the coarser Section 4.3 variants).
    fn subpage_bit(&self, line: LineIdx) -> LineIdx {
        LineIdx::new(line.raw() / self.ssp_cfg.lines_per_subpage as u8)
    }

    /// All cache lines tracked by bitmap bit `bit` under
    /// `lines_per_subpage`-line sub-pages. An associated function (not a
    /// method) so hot loops can iterate it while holding `&mut self`.
    fn subpage_lines(lps: u8, bit: LineIdx) -> impl Iterator<Item = LineIdx> {
        (bit.raw() * lps..(bit.raw() + 1) * lps).map(LineIdx::new)
    }

    /// Physical address of `line` on the side selected by `bit` in `map`.
    fn side_line_addr(
        entry: &crate::ssp_cache::SspEntry,
        map: LineBitmap,
        bit: LineIdx,
        line: LineIdx,
    ) -> PhysAddr {
        if map.get(bit) {
            entry.ppn1.line_addr(line)
        } else {
            entry.ppn0.line_addr(line)
        }
    }

    /// TLB lookup with miss handling: page walk plus SSP-cache metadata
    /// fetch, mirroring the paper's TLB-fill flow.
    fn translate(&mut self, core: CoreId, vpn: Vpn) {
        if self.tlbs[core.index()].lookup(vpn).is_some() {
            return;
        }
        self.machine.record_tlb_miss(core);
        let ppn = self
            .vm
            .translate(vpn)
            .unwrap_or_else(|| panic!("access to unmapped page {vpn}"));
        // Fetch SSP metadata from the controller if the page has a slot.
        if let Some(sid) = self.cache.sid_of(vpn) {
            let cycles = self.cache.access_cycles(sid, self.machine.config());
            self.machine.add_cycles(core, cycles);
        }
        let evicted = self.tlbs[core.index()].insert(vpn, ppn, ());
        *self.tlb_holders.entry(vpn.raw()).or_insert(0) |= 1 << core.index();
        if let Some(old) = evicted {
            self.on_tlb_evict(core, old.vpn);
        }
    }

    fn on_tlb_evict(&mut self, core: CoreId, vpn: Vpn) {
        if let Some(mask) = self.tlb_holders.get_mut(&vpn.raw()) {
            *mask &= !(1 << core.index());
            if *mask == 0 {
                self.tlb_holders.remove(&vpn.raw());
            }
        }
        self.maybe_consolidate(vpn);
    }

    fn maybe_consolidate(&mut self, vpn: Vpn) {
        if !self.ssp_cfg.consolidation_enabled {
            return;
        }
        let holders = self.holders(vpn);
        if holders != 0 {
            return;
        }
        if self
            .fallback_pages
            .iter()
            .any(|set| set.contains(&vpn.raw()))
        {
            return;
        }
        if let Some(sid) = self.cache.sid_of(vpn) {
            // Fault site: mid-consolidation, before lines are copied home.
            self.machine.fault_point(FaultSite::Consolidation);
            self.consolidator
                .enqueue_if_inactive(&mut self.cache, sid, holders);
            self.consolidator.drain(
                &mut self.machine,
                &mut self.cache,
                &mut self.vm,
                &mut self.journal,
            );
        }
    }

    /// Handles dirty TX lines pushed out of the cache hierarchy. Under SSP
    /// this is always safe: the line's home is the non-committed copy, so
    /// writing it back can never clobber durable data (the key property of
    /// Section 3.2).
    fn handle_tx_evictions(&mut self, evictions: Vec<TxEviction>) {
        for ev in evictions {
            self.machine
                .persist_bytes(None, ev.line, &ev.data, WriteClass::Data);
        }
    }

    /// The committed-copy physical address of a line, independent of any
    /// in-flight transaction.
    fn committed_line_addr(&self, vpn: Vpn, line: LineIdx) -> PhysAddr {
        let bit = self.subpage_bit(line);
        match self.cache.entry_by_vpn(vpn) {
            Some((entry, _)) => Self::side_line_addr(entry, entry.committed, bit, line),
            None => {
                let ppn = self.vm.translate(vpn).expect("mapped page");
                ppn.line_addr(line)
            }
        }
    }

    fn current_line_addr(&self, vpn: Vpn, line: LineIdx) -> PhysAddr {
        let bit = self.subpage_bit(line);
        match self.cache.entry_by_vpn(vpn) {
            Some((entry, _)) => Self::side_line_addr(entry, entry.current, bit, line),
            None => {
                let ppn = self.vm.translate(vpn).expect("mapped page");
                ppn.line_addr(line)
            }
        }
    }

    /// Ensures `vpn` has an SSP-cache slot, creating (and journaling) one
    /// on the first transactional write to the page.
    fn ensure_entry(&mut self, core: CoreId, vpn: Vpn) -> SlotId {
        if let Some(sid) = self.cache.sid_of(vpn) {
            return sid;
        }
        let ppn0 = self.vm.translate(vpn).expect("mapped page");
        let (sid, ppn1) = self.cache.allocate(vpn, ppn0, &self.tlb_holders);
        // Controller-side metadata fetch/insert latency.
        let cycles = self.cache.access_cycles(sid, self.machine.config());
        self.machine.add_cycles(core, cycles);
        self.journal.append(Record::Assign {
            sid,
            vpn,
            ppn0,
            ppn1,
        });
        sid
    }

    /// One line-granular transactional store (the Figure 4 flow). With
    /// coarser sub-pages (Section 4.3), the first write remaps the whole
    /// group of lines sharing the tracked bit.
    fn store_line(&mut self, core: CoreId, addr: VirtAddr, data: &[u8]) {
        let vpn = addr.vpn();
        let line = addr.line_index();
        let bit = self.subpage_bit(line);
        self.translate(core, vpn);
        let sid = self.ensure_entry(core, vpn);

        let in_set = self.wsets[core.index()].contains(vpn, bit);
        if in_set {
            // Repeated write: hit the speculative copy in place.
            let entry = self.cache.entry(sid).expect("entry exists");
            let paddr = PhysAddr::new(
                Self::side_line_addr(entry, entry.current, bit, line).raw()
                    + addr.line_offset() as u64,
            );
            let r = self.machine.write(core, paddr, data, true);
            self.handle_tx_evictions(r.tx_evictions);
            return;
        }

        match self.wsets[core.index()].record(vpn, bit) {
            WriteSetInsert::Inserted => {}
            WriteSetInsert::AlreadyPresent => unreachable!("checked above"),
            WriteSetInsert::Overflow => {
                self.fallback_store(core, addr, data);
                return;
            }
        }

        // First write to this sub-page in the transaction: remap every
        // line of the group to the other physical page.
        let lps = self.ssp_cfg.lines_per_subpage as u8;
        for member in Self::subpage_lines(lps, bit) {
            let entry = self.cache.entry(sid).expect("entry exists");
            let old_line = Self::side_line_addr(entry, entry.current, bit, member);
            let new_line = {
                let other = entry.current ^ LineBitmap::from_raw(1 << bit.raw());
                Self::side_line_addr(entry, other, bit, member)
            };

            // Step 1-2: fetch the committed copy into the cache.
            let mut committed_copy = [0u8; LINE_SIZE];
            let r = self.machine.read(core, old_line, &mut committed_copy[..1]);
            self.handle_tx_evictions(r.tx_evictions);

            // Step 3: remap the cached line to the other physical page.
            if let Some(r) = self.machine.retag(core, old_line, new_line) {
                self.handle_tx_evictions(r.tx_evictions);
            } else {
                // The fill was immediately displaced (pathological set
                // pressure): materialise the copy through an explicit
                // full-line write instead.
                let mut full = [0u8; LINE_SIZE];
                let r = self.machine.read(core, old_line, &mut full);
                self.handle_tx_evictions(r.tx_evictions);
                let r = self.machine.write(core, new_line.line_base(), &full, true);
                self.handle_tx_evictions(r.tx_evictions);
            }
        }

        // Step 4: apply the store to the new copy.
        let entry = self.cache.entry(sid).expect("entry exists");
        let new_side = entry.current ^ LineBitmap::from_raw(1 << bit.raw());
        let paddr = PhysAddr::new(
            Self::side_line_addr(entry, new_side, bit, line).raw() + addr.line_offset() as u64,
        );
        let r = self.machine.write(core, paddr, data, true);
        self.handle_tx_evictions(r.tx_evictions);

        // Step 5: flip the current bit and broadcast.
        let entry = self.cache.entry_mut(sid).expect("entry exists");
        entry.current.flip(bit);
        entry.core_refs |= 1 << core.index();
        self.machine.broadcast_flip(core);
    }

    /// Fall-back in-place store with a pre-persisted undo record.
    fn fallback_store(&mut self, core: CoreId, addr: VirtAddr, data: &[u8]) {
        let vpn = addr.vpn();
        let line = addr.line_index();
        let txn = self.open[core.index()].as_mut().expect("open txn");
        if !txn.overflowed {
            txn.overflowed = true;
            self.stats.fallbacks += 1;
        }
        let tid = txn.tid;
        let paddr_line = self.committed_line_addr(vpn, line);
        let already = self.open[core.index()]
            .as_ref()
            .expect("open txn")
            .fallback_lines
            .iter()
            .any(|(v, _)| v.line_base() == addr.line_base());
        if !already {
            // Read the pre-image and persist the undo record before the
            // in-place update (write-ahead).
            let mut old = [0u8; LINE_SIZE];
            let r = self.machine.read(core, paddr_line, &mut old);
            self.handle_tx_evictions(r.tx_evictions);
            let record = UndoRecord {
                tid,
                vaddr: addr.line_base(),
                paddr: paddr_line,
                old_data: old,
            };
            self.fallback.append(&mut self.machine, core, &record);
            self.open[core.index()]
                .as_mut()
                .expect("open txn")
                .fallback_lines
                .push((addr.line_base(), paddr_line));
        }
        self.fallback_pages[core.index()].insert(vpn.raw());
        let paddr = PhysAddr::new(paddr_line.raw() + addr.line_offset() as u64);
        let r = self.machine.write(core, paddr, data, false);
        self.handle_tx_evictions(r.tx_evictions);
    }

    fn maybe_checkpoint(&mut self) {
        if !self
            .journal
            .needs_checkpoint(self.ssp_cfg.checkpoint_threshold_bytes)
        {
            return;
        }
        self.cache.checkpoint(&mut self.machine);
        self.journal.truncate(&mut self.machine);
        self.checkpoints += 1;
    }

    /// Wear-levelling (Section 4.1.2): exchanges the spare pages of up to
    /// `max` inactive slots with fresh pages from the shadow pool, so
    /// write traffic spreads across the pool over time. Each rotation is
    /// journaled (an `Assign` record with the new pair) and the batch is
    /// flushed, making it crash-atomic. Returns the number of slots
    /// rotated.
    pub fn rotate_spares(&mut self, max: usize) -> usize {
        let mut rotated = 0;
        let candidates = self.cache.rotatable_slots();
        for sid in candidates {
            if rotated >= max {
                break;
            }
            if self.next_fresh_spare >= ssp_txn::vm::SHADOW_PAGES {
                break; // pool exhausted; a real system would recycle
            }
            let fresh = self.vm.layout().shadow_page(self.next_fresh_spare);
            self.next_fresh_spare += 1;
            let _retired = self.cache.rotate_spare(sid, fresh);
            if let Some(entry) = self.cache.entry(sid) {
                self.journal.append(Record::Assign {
                    sid,
                    vpn: entry.vpn,
                    ppn0: entry.ppn0,
                    ppn1: fresh,
                });
            }
            rotated += 1;
        }
        if rotated > 0 {
            self.journal.flush(&mut self.machine, None);
            self.machine.persist_bytes(
                None,
                self.vm.layout().header_addr(96),
                &self.next_fresh_spare.to_le_bytes(),
                WriteClass::Other,
            );
        }
        rotated
    }

    /// Runs one full journal checkpoint regardless of the threshold.
    pub fn force_checkpoint(&mut self) {
        self.cache.checkpoint(&mut self.machine);
        self.journal.truncate(&mut self.machine);
        self.checkpoints += 1;
    }
}

impl TxnEngine for Ssp {
    fn name(&self) -> &'static str {
        "SSP"
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn map_new_page(&mut self, core: CoreId) -> Vpn {
        self.vm.map_new_page(&mut self.machine, core)
    }

    fn begin(&mut self, core: CoreId) {
        assert!(
            self.open[core.index()].is_none(),
            "{core} already has an open transaction"
        );
        let tid = self.next_tid;
        self.next_tid += 1;
        debug_assert!(
            self.trackers[core.index()].is_empty(),
            "tracker not folded by the previous transaction"
        );
        self.open[core.index()] = Some(OpenTxn {
            tid,
            fallback_lines: Vec::new(),
            overflowed: false,
        });
        // ATOMIC_BEGIN acts as a full barrier; charge a fence's worth.
        self.machine.add_cycles(core, 10);
        self.machine.obs_record(ObsKind::TxnBegin, u64::from(tid));
    }

    fn load(&mut self, core: CoreId, addr: VirtAddr, buf: &mut [u8]) {
        self.stats.loads += 1;
        self.machine.obs_record(ObsKind::ReadSpan, addr.raw());
        for span in line_spans(addr, buf.len()) {
            let vpn = span.addr.vpn();
            self.translate(core, vpn);
            if self.cache.sid_of(vpn).is_some() {
                // Charge nothing extra: current-bitmap lookup rides on the
                // TLB entry. Reads are redirected per line.
            }
            let paddr_line = self.current_line_addr(vpn, span.addr.line_index());
            let paddr = PhysAddr::new(paddr_line.raw() + span.addr.line_offset() as u64);
            let r = self.machine.read(
                core,
                paddr,
                &mut buf[span.buf_offset..span.buf_offset + span.len],
            );
            self.handle_tx_evictions(r.tx_evictions);
        }
    }

    fn store(&mut self, core: CoreId, addr: VirtAddr, data: &[u8]) {
        assert!(
            self.open[core.index()].is_some(),
            "ATOMIC_STORE outside a transaction on {core}"
        );
        self.stats.stores += 1;
        self.machine.obs_record(ObsKind::WriteSpan, addr.raw());
        self.trackers[core.index()].record(addr, data.len());
        for span in line_spans(addr, data.len()) {
            self.store_line(
                core,
                span.addr,
                &data[span.buf_offset..span.buf_offset + span.len],
            );
        }
    }

    fn commit(&mut self, core: CoreId) {
        let txn = self.open[core.index()]
            .take()
            .unwrap_or_else(|| panic!("commit without an open transaction on {core}"));
        let tid = txn.tid;
        self.machine.obs_record(ObsKind::Validate, u64::from(tid));
        let lps = self.ssp_cfg.lines_per_subpage as u8;

        // 1. Data persistence: flush every write-set line at its current
        //    (speculative-side) location; never overwrites committed data.
        //    Sorted by VPN: the write-set buffer's hash order varies per
        //    instance, and flush/journal order reaches the machine
        //    (determinism contract of `TxnEngine`). The sort runs in a
        //    scratch vector owned by the engine so steady-state commits
        //    allocate nothing.
        let pages = sorted_scratch(
            &mut self.scratch_pages,
            self.wsets[core.index()].iter(),
            |&(v, _)| v.raw(),
        );
        for &(vpn, updated) in &pages {
            for bit in updated.iter_ones() {
                for line in Self::subpage_lines(lps, bit) {
                    let paddr = self.current_line_addr(vpn, line);
                    self.machine.flush(Some(core), paddr, WriteClass::Data);
                    self.machine.clear_tx(paddr);
                }
            }
        }
        // Fall-back lines were updated in place; flush them too.
        for &(_, paddr) in &txn.fallback_lines {
            self.machine.flush(Some(core), paddr, WriteClass::Data);
        }
        // Fault site: data durable, commit mark not yet — a cut here must
        // roll the transaction back on recovery.
        self.machine.fault_point(FaultSite::CommitData);

        // 2. Metadata update instructions to the controller: one 16-byte
        //    record per modified page, then the commit mark; one journal
        //    flush persists them.
        for &(vpn, updated) in &pages {
            let sid = self.cache.sid_of(vpn).expect("written page has a slot");
            let entry = self.cache.entry(sid).expect("entry exists");
            let new_committed = LineBitmap::commit_merge(entry.committed, entry.current, updated);
            self.journal.append(Record::CommitMeta {
                sid,
                tid,
                committed: new_committed,
            });
            let entry = self.cache.entry_mut(sid).expect("entry exists");
            entry.committed = new_committed;
            entry.core_refs &= !(1 << core.index());
        }
        self.journal.append(Record::CommitMark { tid });
        self.journal.flush(&mut self.machine, Some(core));
        // Fault site: the commit mark just became durable — a cut here
        // must keep the transaction.
        self.machine.fault_point(FaultSite::CommitMark);

        // 3. Release the fall-back log if used.
        if !txn.fallback_lines.is_empty() {
            self.fallback.reset(&mut self.machine, Some(core));
        }

        // 4. Book-keeping: write set, stats, consolidation of pages that
        //    already left every TLB, checkpointing.
        self.wsets[core.index()].clear();
        self.trackers[core.index()].fold_commit(&mut self.stats);
        let released = sorted_scratch(
            &mut self.scratch_released,
            self.fallback_pages[core.index()].drain(),
            |&r| r,
        );
        for &(vpn, _) in &pages {
            self.maybe_consolidate(vpn);
        }
        for &raw in &released {
            self.maybe_consolidate(Vpn::new(raw));
        }
        self.scratch_pages = pages;
        self.scratch_released = released;
        self.maybe_checkpoint();
        self.machine.obs_record(ObsKind::Commit, u64::from(tid));
    }

    fn abort(&mut self, core: CoreId) {
        let txn = self.open[core.index()]
            .take()
            .unwrap_or_else(|| panic!("abort without an open transaction on {core}"));
        self.machine.obs_record(ObsKind::Abort, u64::from(txn.tid));
        let lps = self.ssp_cfg.lines_per_subpage as u8;

        // Discard speculative copies and flip current bits back (sorted
        // by VPN; see the commit path).
        let pages = sorted_scratch(
            &mut self.scratch_pages,
            self.wsets[core.index()].iter(),
            |&(v, _)| v.raw(),
        );
        for &(vpn, updated) in &pages {
            for bit in updated.iter_ones() {
                for line in Self::subpage_lines(lps, bit) {
                    let paddr = self.current_line_addr(vpn, line);
                    self.machine.discard_line(paddr);
                }
            }
            let sid = self.cache.sid_of(vpn).expect("written page has a slot");
            let entry = self.cache.entry_mut(sid).expect("entry exists");
            entry.current = entry.current ^ updated;
            entry.core_refs &= !(1 << core.index());
            self.machine.broadcast_flip(core);
        }

        // Roll back fall-back in-place updates from the undo log.
        if !txn.fallback_lines.is_empty() {
            for record in self.fallback.read_all(&self.machine) {
                if record.tid == txn.tid {
                    let r = self
                        .machine
                        .write(core, record.paddr, &record.old_data, false);
                    self.handle_tx_evictions(r.tx_evictions);
                    self.machine
                        .flush(Some(core), record.paddr, WriteClass::Data);
                }
            }
            self.fallback.reset(&mut self.machine, Some(core));
        }

        self.wsets[core.index()].clear();
        self.trackers[core.index()].fold_abort(&mut self.stats);
        let released = sorted_scratch(
            &mut self.scratch_released,
            self.fallback_pages[core.index()].drain(),
            |&r| r,
        );
        for &(vpn, _) in &pages {
            self.maybe_consolidate(vpn);
        }
        for &raw in &released {
            self.maybe_consolidate(Vpn::new(raw));
        }
        self.scratch_pages = pages;
        self.scratch_released = released;
    }

    fn crash(&mut self) {
        self.machine.crash();
        for tlb in &mut self.tlbs {
            let _ = tlb.drain();
        }
        self.tlb_holders.clear();
        for w in &mut self.wsets {
            w.clear();
        }
        for f in &mut self.fallback_pages {
            f.clear();
        }
        for o in &mut self.open {
            *o = None;
        }
        for t in &mut self.trackers {
            t.clear();
        }
    }

    fn recover(&mut self) {
        self.machine.obs_record(ObsKind::RecoveryReplay, 0);
        // 1. Rebuild the OS structures and the persistent halves.
        self.vm.recover(&self.machine);
        {
            let mut buf = [0u8; 8];
            self.machine
                .read_bytes_uncached(self.vm.layout().header_addr(96), &mut buf);
            let persisted = u64::from_le_bytes(buf);
            self.next_fresh_spare = persisted.max(self.cache.slot_count() as u64);
        }
        self.journal.recover(&self.machine);
        self.fallback.recover(&self.machine);
        let slot_count = self.cache.slot_count();
        self.cache.recover(&self.machine, slot_count);

        // 2. Replay the journal: first find committed transactions, then
        //    apply records in order (controller records always apply).
        let records = self.journal.read_live(&self.machine);
        self.last_recovery_replayed = records.len() as u64;
        self.last_recovery_replayed_bytes = records.iter().map(|r| r.encoded_len() as u64).sum();
        // Fault site: persistent state read, nothing written back yet — a
        // cut here models a crash *during recovery*; rerunning recovery
        // from scratch must succeed (replay is idempotent).
        self.machine.fault_point(FaultSite::Recovery);
        let committed_tids: std::collections::HashSet<u32> = records
            .iter()
            .filter_map(|r| match r {
                Record::CommitMark { tid } => Some(*tid),
                _ => None,
            })
            .collect();
        let mut max_tid = 0u32;
        for record in records {
            match record {
                Record::Assign {
                    sid,
                    vpn,
                    ppn0,
                    ppn1,
                } => {
                    self.cache.install(
                        sid,
                        crate::ssp_cache::SspEntry {
                            vpn,
                            ppn0,
                            ppn1,
                            committed: LineBitmap::ZERO,
                            current: LineBitmap::ZERO,
                            core_refs: 0,
                            consolidating: false,
                        },
                    );
                }
                Record::Remap {
                    sid,
                    vpn,
                    ppn0,
                    ppn1,
                } => {
                    self.cache.install(
                        sid,
                        crate::ssp_cache::SspEntry {
                            vpn,
                            ppn0,
                            ppn1,
                            committed: LineBitmap::ZERO,
                            current: LineBitmap::ZERO,
                            core_refs: 0,
                            consolidating: false,
                        },
                    );
                    // The Remap doubles as the durable page-table update.
                    self.vm.update_mapping(&mut self.machine, vpn, ppn0);
                }
                Record::CommitMeta {
                    sid,
                    tid,
                    committed,
                } => {
                    max_tid = max_tid.max(tid);
                    if committed_tids.contains(&tid) {
                        if let Some(entry) = self.cache.entry_mut(sid) {
                            entry.committed = committed;
                            entry.current = committed;
                        }
                    }
                }
                Record::CommitMark { tid } => {
                    max_tid = max_tid.max(tid);
                }
            }
        }

        // 3. Roll back fall-back undo records of uncommitted transactions
        //    (newest first).
        if !self.fallback.is_empty() {
            let undo = self.fallback.read_all(&self.machine);
            for record in undo.iter().rev() {
                max_tid = max_tid.max(record.tid);
                if !committed_tids.contains(&record.tid) {
                    self.machine.persist_bytes(
                        None,
                        record.paddr,
                        &record.old_data,
                        WriteClass::Data,
                    );
                }
            }
            self.fallback.reset(&mut self.machine, None);
        }

        self.next_tid = max_tid + 1;

        // 4. Fold the replayed state down so the journal starts clean.
        self.force_checkpoint();
    }

    fn in_txn(&self, core: CoreId) -> bool {
        self.open[core.index()].is_some()
    }

    fn txn_stats(&self) -> &TxnStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssp() -> Ssp {
        Ssp::new(MachineConfig::default(), SspConfig::default())
    }

    const C0: CoreId = CoreId::new(0);
    const C1: CoreId = CoreId::new(1);

    fn read_u64(engine: &mut Ssp, core: CoreId, addr: VirtAddr) -> u64 {
        let mut buf = [0u8; 8];
        engine.load(core, addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    #[test]
    fn committed_data_survives_crash() {
        let mut e = ssp();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, addr, &7u64.to_le_bytes());
        e.commit(C0);
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, C0, addr), 7);
    }

    #[test]
    fn uncommitted_data_vanishes_on_crash() {
        let mut e = ssp();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, addr, &1u64.to_le_bytes());
        e.commit(C0);
        e.begin(C0);
        e.store(C0, addr, &2u64.to_le_bytes());
        // No commit.
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, C0, addr), 1);
    }

    #[test]
    fn abort_restores_committed_value() {
        let mut e = ssp();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, addr, &10u64.to_le_bytes());
        e.commit(C0);
        e.begin(C0);
        e.store(C0, addr, &20u64.to_le_bytes());
        assert_eq!(read_u64(&mut e, C0, addr), 20); // reads see speculative
        e.abort(C0);
        assert_eq!(read_u64(&mut e, C0, addr), 10);
        assert_eq!(e.txn_stats().aborted, 1);
    }

    #[test]
    fn repeated_writes_to_same_line_stay_speculative() {
        let mut e = ssp();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        for i in 0..10u64 {
            e.store(C0, addr, &i.to_le_bytes());
        }
        e.abort(C0);
        assert_eq!(read_u64(&mut e, C0, addr), 0);
    }

    #[test]
    fn multi_page_transaction_is_atomic() {
        let mut e = ssp();
        let a = e.map_new_page(C0).base();
        let b = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, a, &1u64.to_le_bytes());
        e.store(C0, b, &2u64.to_le_bytes());
        e.commit(C0);
        e.begin(C0);
        e.store(C0, a, &3u64.to_le_bytes());
        e.store(C0, b, &4u64.to_le_bytes());
        // Crash without the commit mark: both pages must roll back.
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, C0, a), 1);
        assert_eq!(read_u64(&mut e, C0, b), 2);
    }

    #[test]
    fn commit_alternates_physical_copies() {
        let mut e = ssp();
        let addr = e.map_new_page(C0).base();
        for i in 0..6u64 {
            e.begin(C0);
            e.store(C0, addr, &i.to_le_bytes());
            e.commit(C0);
            assert_eq!(read_u64(&mut e, C0, addr), i);
        }
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, C0, addr), 5);
    }

    #[test]
    fn two_cores_commit_independently() {
        let mut e = ssp();
        let a = e.map_new_page(C0).base();
        let b = e.map_new_page(C1).base();
        e.begin(C0);
        e.begin(C1);
        e.store(C0, a, &11u64.to_le_bytes());
        e.store(C1, b, &22u64.to_le_bytes());
        e.commit(C0);
        // C1 crashes uncommitted.
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, C0, a), 11);
        assert_eq!(read_u64(&mut e, C0, b), 0);
    }

    #[test]
    fn two_cores_same_page_disjoint_lines() {
        let mut e = ssp();
        let page = e.map_new_page(C0);
        let a = page.base();
        let b = page.base().add(64);
        e.begin(C0);
        e.begin(C1);
        e.store(C0, a, &1u64.to_le_bytes());
        e.store(C1, b, &2u64.to_le_bytes());
        e.commit(C0);
        e.crash_and_recover();
        // C0's line committed, C1's speculative line rolled back.
        assert_eq!(read_u64(&mut e, C0, a), 1);
        assert_eq!(read_u64(&mut e, C0, b), 0);
    }

    #[test]
    fn flip_broadcasts_counted_once_per_first_write() {
        let mut e = ssp();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, addr, &1u64.to_le_bytes());
        e.store(C0, addr, &2u64.to_le_bytes()); // same line: no new flip
        e.store(C0, addr.add(64), &3u64.to_le_bytes()); // new line: flip
        e.commit(C0);
        assert_eq!(e.machine().stats().flip_broadcasts, 2);
    }

    #[test]
    fn commit_journal_records_one_per_page_plus_mark() {
        let mut e = ssp();
        let a = e.map_new_page(C0).base();
        let b = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, a, &1u64.to_le_bytes());
        e.store(C0, b, &2u64.to_le_bytes());
        let before = e.journal_records();
        e.commit(C0);
        // Two CommitMeta + one CommitMark.
        assert_eq!(e.journal_records() - before, 3);
    }

    #[test]
    fn consolidation_triggered_by_tlb_pressure() {
        let cfg = MachineConfig::default();
        let mut e = Ssp::new(cfg.clone(), SspConfig::default());
        // Touch more pages than the TLB holds so early pages are evicted.
        let pages: Vec<VirtAddr> = (0..cfg.dtlb_entries + 8)
            .map(|_| e.map_new_page(C0).base())
            .collect();
        for (i, &p) in pages.iter().enumerate() {
            e.begin(C0);
            e.store(C0, p, &(i as u64).to_le_bytes());
            e.commit(C0);
        }
        assert!(e.consolidation_stats().pages > 0);
        assert!(e.machine().stats().nvram_writes(WriteClass::Consolidation) > 0);
        // All data still correct.
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(read_u64(&mut e, C0, p), i as u64);
        }
    }

    #[test]
    fn consolidation_disabled_ablation() {
        let cfg = MachineConfig::default();
        let ssp_cfg = SspConfig {
            consolidation_enabled: false,
            ..SspConfig::default()
        };
        let mut e = Ssp::new(cfg.clone(), ssp_cfg);
        for i in 0..(cfg.dtlb_entries + 8) {
            let p = e.map_new_page(C0).base();
            e.begin(C0);
            e.store(C0, p, &(i as u64).to_le_bytes());
            e.commit(C0);
        }
        assert_eq!(e.consolidation_stats().pages, 0);
    }

    #[test]
    fn checkpoint_fires_and_data_survives() {
        let cfg = MachineConfig::default();
        let ssp_cfg = SspConfig {
            checkpoint_threshold_bytes: 256, // tiny: force checkpoints
            ..SspConfig::default()
        };
        let mut e = Ssp::new(cfg, ssp_cfg);
        let addr = e.map_new_page(C0).base();
        for i in 0..50u64 {
            e.begin(C0);
            e.store(C0, addr.add((i % 8) * 8), &i.to_le_bytes());
            e.commit(C0);
        }
        assert!(e.checkpoints() > 0);
        assert!(e.machine().stats().nvram_writes(WriteClass::Checkpoint) > 0);
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, C0, addr.add(8)), 49);
    }

    #[test]
    fn fallback_engages_on_write_set_overflow() {
        let cfg = MachineConfig::default();
        let ssp_cfg = SspConfig {
            write_set_capacity: 2,
            ..SspConfig::default()
        };
        let mut e = Ssp::new(cfg, ssp_cfg);
        let pages: Vec<VirtAddr> = (0..4).map(|_| e.map_new_page(C0).base()).collect();
        e.begin(C0);
        for (i, &p) in pages.iter().enumerate() {
            e.store(C0, p, &(i as u64 + 1).to_le_bytes());
        }
        e.commit(C0);
        assert_eq!(e.txn_stats().fallbacks, 1);
        assert!(e.machine().stats().nvram_writes(WriteClass::Log) > 0);
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(read_u64(&mut e, C0, p), i as u64 + 1);
        }
        e.crash_and_recover();
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(read_u64(&mut e, C0, p), i as u64 + 1);
        }
    }

    #[test]
    fn fallback_rolls_back_on_crash() {
        let cfg = MachineConfig::default();
        let ssp_cfg = SspConfig {
            write_set_capacity: 2,
            ..SspConfig::default()
        };
        let mut e = Ssp::new(cfg, ssp_cfg);
        let pages: Vec<VirtAddr> = (0..4).map(|_| e.map_new_page(C0).base()).collect();
        // Commit a baseline.
        e.begin(C0);
        for &p in &pages {
            e.store(C0, p, &100u64.to_le_bytes());
        }
        e.commit(C0);
        // Overflowing transaction that crashes before commit.
        e.begin(C0);
        for &p in &pages {
            e.store(C0, p, &200u64.to_le_bytes());
        }
        e.crash_and_recover();
        for &p in &pages {
            assert_eq!(read_u64(&mut e, C0, p), 100);
        }
    }

    #[test]
    fn fallback_abort_restores_in_place_updates() {
        let cfg = MachineConfig::default();
        let ssp_cfg = SspConfig {
            write_set_capacity: 1,
            ..SspConfig::default()
        };
        let mut e = Ssp::new(cfg, ssp_cfg);
        let a = e.map_new_page(C0).base();
        let b = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, a, &1u64.to_le_bytes());
        e.store(C0, b, &2u64.to_le_bytes());
        e.commit(C0);
        e.begin(C0);
        e.store(C0, a, &3u64.to_le_bytes());
        e.store(C0, b, &4u64.to_le_bytes()); // falls back (capacity 1)
        e.abort(C0);
        assert_eq!(read_u64(&mut e, C0, a), 1);
        assert_eq!(read_u64(&mut e, C0, b), 2);
    }

    #[test]
    fn sub_line_and_cross_line_stores() {
        let mut e = ssp();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        // Store crossing a line boundary (offset 60, 8 bytes).
        e.store(C0, addr.add(60), &0xDEAD_BEEF_CAFE_F00Du64.to_le_bytes());
        // Single-byte store inside an already-written line.
        e.store(C0, addr.add(61), &[0xff]);
        e.commit(C0);
        e.crash_and_recover();
        let mut buf = [0u8; 8];
        e.load(C0, addr.add(60), &mut buf);
        let mut expect = 0xDEAD_BEEF_CAFE_F00Du64.to_le_bytes();
        expect[1] = 0xff;
        assert_eq!(buf, expect);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut e = ssp();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, addr, &5u64.to_le_bytes());
        e.commit(C0);
        e.crash_and_recover();
        e.crash_and_recover();
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, C0, addr), 5);
    }

    #[test]
    fn tid_monotonic_across_recovery() {
        let mut e = ssp();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, addr, &1u64.to_le_bytes());
        e.commit(C0);
        e.crash_and_recover();
        // A new transaction after recovery must still commit cleanly.
        e.begin(C0);
        e.store(C0, addr, &2u64.to_le_bytes());
        e.commit(C0);
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, C0, addr), 2);
    }

    #[test]
    fn write_set_stats_track_table3_shape() {
        let mut e = ssp();
        let a = e.map_new_page(C0).base();
        let b = e.map_new_page(C0).base();
        e.begin(C0);
        e.store(C0, a, &1u64.to_le_bytes());
        e.store(C0, a.add(64), &1u64.to_le_bytes());
        e.store(C0, b, &1u64.to_le_bytes());
        e.commit(C0);
        let s = e.txn_stats();
        assert_eq!(s.committed, 1);
        assert_eq!(s.lines_written_sum, 3);
        assert_eq!(s.pages_written_sum, 2);
        assert_eq!(s.pages_written_max, 2);
    }

    #[test]
    #[should_panic(expected = "already has an open transaction")]
    fn double_begin_panics() {
        let mut e = ssp();
        e.begin(C0);
        e.begin(C0);
    }

    #[test]
    #[should_panic(expected = "outside a transaction")]
    fn store_outside_txn_panics() {
        let mut e = ssp();
        let addr = e.map_new_page(C0).base();
        e.store(C0, addr, &[1]);
    }

    #[test]
    fn no_redundant_data_writes_in_commit_path() {
        // The headline claim: SSP writes each committed line once (Data)
        // plus tiny journal records; no Log-class writes at all.
        let mut e = ssp();
        let addr = e.map_new_page(C0).base();
        e.begin(C0);
        for i in 0..8u64 {
            e.store(C0, addr.add(i * 64), &i.to_le_bytes());
        }
        e.commit(C0);
        let s = e.machine().stats();
        assert_eq!(s.nvram_writes(WriteClass::Log), 0);
        assert!(s.nvram_writes(WriteClass::Data) >= 8);
        // Journal: 1 record line + 1 head-pointer line.
        assert!(s.nvram_writes(WriteClass::MetaJournal) <= 4);
    }
}
