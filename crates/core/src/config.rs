//! SSP-specific configuration knobs.

/// Configuration of the SSP hardware extensions.
///
/// Defaults follow Section 5.1 of the paper: a 64-entry write-set buffer
/// (sufficient for every evaluated workload), an SSP cache sized
/// `cores × TLB entries + overprovision`, and roughly 1 K SSP-cache entries
/// resident in a reserved slice of the L3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SspConfig {
    /// Write-set buffer entries per core (pages per transaction before the
    /// software fall-back path engages).
    pub write_set_capacity: usize,
    /// Overprovisioning factor `O` in the SSP-cache sizing rule
    /// `N × T + O`.
    pub ssp_cache_overprovision: usize,
    /// SSP-cache entries that hit in the reserved L3 slice; accesses beyond
    /// this recency depth pay DRAM latency.
    pub ssp_cache_l3_entries: usize,
    /// Fixed SSP-cache access latency override in cycles (Figure 9 sweep);
    /// `None` uses the L3-slice recency model.
    pub meta_latency_override: Option<u64>,
    /// Checkpoint the metadata journal once it holds this many bytes.
    pub checkpoint_threshold_bytes: u64,
    /// Capacity of the metadata journal ring in bytes.
    pub journal_capacity_bytes: u64,
    /// Whether inactive pages are consolidated eagerly (`false` is the
    /// space-for-writes ablation: pages keep both frames forever).
    pub consolidation_enabled: bool,
    /// Cache lines per tracked sub-page (Section 4.3): `1` is the paper's
    /// base design (64 B tracking, 64-bit bitmaps); `4` models Optane's
    /// 256 B persist granularity (16-bit bitmaps, smaller TLB cost, more
    /// write amplification). Must be a power of two dividing 64.
    pub lines_per_subpage: usize,
}

impl Default for SspConfig {
    fn default() -> Self {
        Self {
            write_set_capacity: 64,
            ssp_cache_overprovision: 64,
            ssp_cache_l3_entries: 1024,
            meta_latency_override: None,
            checkpoint_threshold_bytes: 256 * 1024,
            journal_capacity_bytes: 8 * 1024 * 1024,
            consolidation_enabled: true,
            lines_per_subpage: 1,
        }
    }
}

impl SspConfig {
    /// The SSP-cache slot count for a machine with `cores` cores and
    /// `tlb_entries`-entry TLBs: `N × T + O` (Section 4.1.2).
    pub fn cache_slots(&self, cores: usize, tlb_entries: usize) -> usize {
        cores * tlb_entries + self.ssp_cache_overprovision
    }

    /// Number of tracked sub-pages per page.
    pub fn subpages_per_page(&self) -> usize {
        ssp_simulator::addr::LINES_PER_PAGE / self.lines_per_subpage
    }

    /// Validates the sub-page setting.
    ///
    /// # Panics
    ///
    /// Panics if `lines_per_subpage` is not a power of two dividing 64.
    pub fn validate(&self) {
        assert!(
            self.lines_per_subpage.is_power_of_two()
                && self.lines_per_subpage <= ssp_simulator::addr::LINES_PER_PAGE,
            "lines_per_subpage must be a power of two dividing 64"
        );
        assert!(
            self.write_set_capacity > 0,
            "write-set capacity must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_values() {
        let c = SspConfig::default();
        assert_eq!(c.write_set_capacity, 64);
        assert_eq!(c.ssp_cache_l3_entries, 1024);
        assert!(c.consolidation_enabled);
        assert!(c.meta_latency_override.is_none());
    }

    #[test]
    fn subpage_settings() {
        let mut c = SspConfig::default();
        assert_eq!(c.subpages_per_page(), 64);
        c.lines_per_subpage = 4;
        assert_eq!(c.subpages_per_page(), 16);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_subpage_panics() {
        let c = SspConfig {
            lines_per_subpage: 3,
            ..SspConfig::default()
        };
        c.validate();
    }

    #[test]
    fn cache_sizing_rule() {
        let c = SspConfig::default();
        assert_eq!(c.cache_slots(4, 64), 4 * 64 + 64);
        assert_eq!(c.cache_slots(1, 64), 128);
    }
}
