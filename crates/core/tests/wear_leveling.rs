//! Tests of the Section 4.1.2 wear-levelling extension: the memory
//! controller exchanges per-slot spare pages with fresh pages from the
//! shadow pool, crash-atomically.

use ssp_core::engine::Ssp;
use ssp_core::SspConfig;
use ssp_simulator::addr::VirtAddr;
use ssp_simulator::cache::CoreId;
use ssp_simulator::config::MachineConfig;
use ssp_txn::engine::TxnEngine;

const C0: CoreId = CoreId::new(0);

fn read_u64(e: &mut Ssp, addr: VirtAddr) -> u64 {
    let mut buf = [0u8; 8];
    e.load(C0, addr, &mut buf);
    u64::from_le_bytes(buf)
}

fn commit_u64(e: &mut Ssp, addr: VirtAddr, v: u64) {
    e.begin(C0);
    e.store(C0, addr, &v.to_le_bytes());
    e.commit(C0);
}

#[test]
fn rotation_keeps_data_readable() {
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    let pages: Vec<VirtAddr> = (0..8).map(|_| e.map_new_page(C0).base()).collect();
    for (i, &p) in pages.iter().enumerate() {
        commit_u64(&mut e, p, i as u64 + 1);
    }
    // Pages are still TLB-held so their committed bitmaps are live; only
    // consolidated/empty slots rotate. Force inactivity first.
    e.crash_and_recover(); // drops TLBs; recovery leaves committed state
    let rotated = e.rotate_spares(64);
    assert!(rotated > 0, "some slots rotated");
    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(read_u64(&mut e, p), i as u64 + 1);
    }
}

#[test]
fn rotation_survives_crash() {
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    let pages: Vec<VirtAddr> = (0..4).map(|_| e.map_new_page(C0).base()).collect();
    for (i, &p) in pages.iter().enumerate() {
        commit_u64(&mut e, p, 100 + i as u64);
    }
    e.crash_and_recover();
    e.rotate_spares(64);
    // New transactions use the fresh spares; everything stays consistent
    // across another crash.
    for (i, &p) in pages.iter().enumerate() {
        commit_u64(&mut e, p, 200 + i as u64);
    }
    e.crash_and_recover();
    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(read_u64(&mut e, p), 200 + i as u64);
    }
}

#[test]
fn repeated_rotation_uses_distinct_fresh_pages() {
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    let p = e.map_new_page(C0).base();
    commit_u64(&mut e, p, 1);
    e.crash_and_recover();
    let r1 = e.rotate_spares(4);
    let r2 = e.rotate_spares(4);
    assert!(r1 > 0 && r2 > 0);
    // After two rotations plus intervening commits, data is intact.
    commit_u64(&mut e, p, 2);
    e.crash_and_recover();
    assert_eq!(read_u64(&mut e, p), 2);
}

#[test]
fn rotation_counter_survives_crash() {
    // The fresh-page counter is persisted, so post-crash rotations cannot
    // re-issue spare pages that are already in use.
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    let p = e.map_new_page(C0).base();
    commit_u64(&mut e, p, 1);
    e.crash_and_recover();
    let before = e.rotate_spares(8);
    assert!(before > 0);
    commit_u64(&mut e, p, 2);
    e.crash_and_recover();
    let again = e.rotate_spares(8);
    assert!(again > 0);
    commit_u64(&mut e, p, 3);
    e.crash_and_recover();
    assert_eq!(read_u64(&mut e, p), 3);
}
