//! Recovery edge cases for the SSP engine: journal epochs across repeated
//! checkpoint/crash cycles, SSP-cache slot reuse, crash storms, and
//! recovery idempotence under every configuration knob.

use ssp_core::engine::Ssp;
use ssp_core::SspConfig;
use ssp_simulator::addr::VirtAddr;
use ssp_simulator::cache::CoreId;
use ssp_simulator::config::MachineConfig;
use ssp_txn::engine::TxnEngine;

const C0: CoreId = CoreId::new(0);

fn read_u64(e: &mut Ssp, addr: VirtAddr) -> u64 {
    let mut buf = [0u8; 8];
    e.load(C0, addr, &mut buf);
    u64::from_le_bytes(buf)
}

fn commit_u64(e: &mut Ssp, addr: VirtAddr, v: u64) {
    e.begin(C0);
    e.store(C0, addr, &v.to_le_bytes());
    e.commit(C0);
}

#[test]
fn many_checkpoint_epochs_then_crash() {
    // Epoch wrap-around safety: force hundreds of checkpoints so the u8
    // epoch wraps at least once, then crash and verify.
    let ssp_cfg = SspConfig {
        checkpoint_threshold_bytes: 1, // checkpoint after every commit
        ..SspConfig::default()
    };
    let mut e = Ssp::new(MachineConfig::default(), ssp_cfg);
    let addr = e.map_new_page(C0).base();
    for i in 0..300u64 {
        commit_u64(&mut e, addr.add((i % 16) * 8), i);
    }
    assert!(
        e.checkpoints() > 255,
        "epoch must wrap: {}",
        e.checkpoints()
    );
    e.crash_and_recover();
    for i in 284..300u64 {
        assert_eq!(read_u64(&mut e, addr.add((i % 16) * 8)), i);
    }
}

#[test]
fn crash_storm_between_every_transaction() {
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    let addr = e.map_new_page(C0).base();
    for i in 0..40u64 {
        commit_u64(&mut e, addr, i);
        e.crash_and_recover();
        assert_eq!(read_u64(&mut e, addr), i, "iteration {i}");
    }
}

#[test]
fn double_crash_without_intervening_work() {
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    let addr = e.map_new_page(C0).base();
    commit_u64(&mut e, addr, 99);
    e.crash_and_recover();
    e.crash_and_recover();
    e.crash_and_recover();
    assert_eq!(read_u64(&mut e, addr), 99);
}

#[test]
fn slot_reuse_across_crash() {
    // Tiny SSP cache + many pages: slots are recycled; the Assign records
    // must keep the persistent images coherent across crashes.
    let ssp_cfg = SspConfig {
        ssp_cache_overprovision: 2,
        ..SspConfig::default()
    };
    let cfg = MachineConfig {
        dtlb_entries: 2,
        cores: 1,
        ..MachineConfig::default()
    };
    let mut e = Ssp::new(cfg, ssp_cfg);
    let pages: Vec<VirtAddr> = (0..12).map(|_| e.map_new_page(C0).base()).collect();
    for round in 0..3u64 {
        for (i, &p) in pages.iter().enumerate() {
            commit_u64(&mut e, p, round * 100 + i as u64);
        }
        e.crash_and_recover();
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(
                read_u64(&mut e, p),
                round * 100 + i as u64,
                "round {round} page {i}"
            );
        }
    }
}

#[test]
fn crash_immediately_after_map_new_page() {
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    let a = e.map_new_page(C0).base();
    commit_u64(&mut e, a, 5);
    let b = e.map_new_page(C0).base();
    // Crash before ever writing to b: the mapping itself must survive.
    e.crash_and_recover();
    assert_eq!(read_u64(&mut e, a), 5);
    commit_u64(&mut e, b, 6);
    assert_eq!(read_u64(&mut e, b), 6);
}

#[test]
fn uncommitted_multi_page_txn_with_checkpoint_in_flight() {
    // A checkpoint between two committed transactions must not resurrect
    // or lose anything when the *next* transaction crashes.
    let ssp_cfg = SspConfig {
        checkpoint_threshold_bytes: 32,
        ..SspConfig::default()
    };
    let mut e = Ssp::new(MachineConfig::default(), ssp_cfg);
    let a = e.map_new_page(C0).base();
    let b = e.map_new_page(C0).base();
    commit_u64(&mut e, a, 1);
    commit_u64(&mut e, b, 2);
    e.begin(C0);
    e.store(C0, a, &3u64.to_le_bytes());
    e.store(C0, b, &4u64.to_le_bytes());
    e.crash_and_recover();
    assert_eq!(read_u64(&mut e, a), 1);
    assert_eq!(read_u64(&mut e, b), 2);
}

#[test]
fn recovery_after_abort_then_crash() {
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    let addr = e.map_new_page(C0).base();
    commit_u64(&mut e, addr, 10);
    e.begin(C0);
    e.store(C0, addr, &20u64.to_le_bytes());
    e.abort(C0);
    e.begin(C0);
    e.store(C0, addr, &30u64.to_le_bytes());
    e.crash_and_recover();
    assert_eq!(read_u64(&mut e, addr), 10);
}

#[test]
fn interleaved_cores_one_crashes_mid_txn() {
    let c1 = CoreId::new(1);
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    let a = e.map_new_page(C0).base();
    let b = e.map_new_page(c1).base();
    // Core 0 commits; core 1 is mid-transaction at the crash.
    e.begin(C0);
    e.begin(c1);
    e.store(C0, a, &1u64.to_le_bytes());
    e.store(c1, b, &2u64.to_le_bytes());
    e.commit(C0);
    e.store(c1, b.add(8), &3u64.to_le_bytes());
    e.crash_and_recover();
    assert_eq!(read_u64(&mut e, a), 1);
    assert_eq!(read_u64(&mut e, b), 0);
    assert_eq!(read_u64(&mut e, b.add(8)), 0);
}

#[test]
fn post_recovery_engine_is_fully_functional() {
    // After a crash the engine must support the complete lifecycle again:
    // mapping, transactions, aborts, consolidation, another crash.
    let cfg = MachineConfig {
        dtlb_entries: 4,
        ..MachineConfig::default()
    };
    let mut e = Ssp::new(cfg, SspConfig::default());
    let a = e.map_new_page(C0).base();
    commit_u64(&mut e, a, 1);
    e.crash_and_recover();

    let pages: Vec<VirtAddr> = (0..10).map(|_| e.map_new_page(C0).base()).collect();
    for (i, &p) in pages.iter().enumerate() {
        commit_u64(&mut e, p, i as u64);
    }
    e.begin(C0);
    e.store(C0, a, &999u64.to_le_bytes());
    e.abort(C0);
    e.crash_and_recover();
    assert_eq!(read_u64(&mut e, a), 1);
    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(read_u64(&mut e, p), i as u64);
    }
    assert!(e.consolidation_stats().pages > 0);
}
