//! Tests of the Section 4.3 sub-page granularity extension: with
//! `lines_per_subpage = 4` (Optane's 256 B persist granularity), the
//! bitmaps shrink to 16 bits but every first write remaps — and every
//! commit flushes — a whole 4-line group.

use ssp_core::engine::Ssp;
use ssp_core::SspConfig;
use ssp_simulator::addr::VirtAddr;
use ssp_simulator::cache::CoreId;
use ssp_simulator::config::MachineConfig;
use ssp_simulator::stats::WriteClass;
use ssp_txn::engine::TxnEngine;

const C0: CoreId = CoreId::new(0);

fn engine(lps: usize) -> Ssp {
    let ssp_cfg = SspConfig {
        lines_per_subpage: lps,
        ..SspConfig::default()
    };
    Ssp::new(MachineConfig::default(), ssp_cfg)
}

fn read_u64(e: &mut Ssp, addr: VirtAddr) -> u64 {
    let mut buf = [0u8; 8];
    e.load(C0, addr, &mut buf);
    u64::from_le_bytes(buf)
}

#[test]
fn basic_commit_and_crash_at_256b_granularity() {
    let mut e = engine(4);
    let addr = e.map_new_page(C0).base();
    e.begin(C0);
    e.store(C0, addr, &7u64.to_le_bytes());
    e.commit(C0);
    e.crash_and_recover();
    assert_eq!(read_u64(&mut e, addr), 7);
}

#[test]
fn neighbours_in_the_group_survive_the_remap() {
    let mut e = engine(4);
    let addr = e.map_new_page(C0).base();
    // Commit distinct values into all 4 lines of group 0.
    e.begin(C0);
    for l in 0..4u64 {
        e.store(C0, addr.add(l * 64), &(100 + l).to_le_bytes());
    }
    e.commit(C0);
    // Update only line 2: the group remaps; lines 0,1,3 must carry over.
    e.begin(C0);
    e.store(C0, addr.add(2 * 64), &999u64.to_le_bytes());
    e.commit(C0);
    e.crash_and_recover();
    assert_eq!(read_u64(&mut e, addr), 100);
    assert_eq!(read_u64(&mut e, addr.add(64)), 101);
    assert_eq!(read_u64(&mut e, addr.add(2 * 64)), 999);
    assert_eq!(read_u64(&mut e, addr.add(3 * 64)), 103);
}

#[test]
fn uncommitted_group_update_rolls_back_whole() {
    let mut e = engine(4);
    let addr = e.map_new_page(C0).base();
    e.begin(C0);
    for l in 0..4u64 {
        e.store(C0, addr.add(l * 64), &(l + 1).to_le_bytes());
    }
    e.commit(C0);
    e.begin(C0);
    e.store(C0, addr, &555u64.to_le_bytes());
    e.crash_and_recover();
    for l in 0..4u64 {
        assert_eq!(read_u64(&mut e, addr.add(l * 64)), l + 1);
    }
}

#[test]
fn abort_restores_group() {
    let mut e = engine(4);
    let addr = e.map_new_page(C0).base();
    e.begin(C0);
    e.store(C0, addr.add(64), &11u64.to_le_bytes());
    e.commit(C0);
    e.begin(C0);
    e.store(C0, addr, &22u64.to_le_bytes());
    e.abort(C0);
    assert_eq!(read_u64(&mut e, addr), 0);
    assert_eq!(read_u64(&mut e, addr.add(64)), 11);
}

#[test]
fn coarser_granularity_amplifies_data_writes() {
    // A single 8-byte store per transaction: 64 B tracking flushes one
    // line, 256 B tracking flushes four.
    let count = |lps: usize| {
        let mut e = engine(lps);
        let addr = e.map_new_page(C0).base();
        for i in 0..10u64 {
            e.begin(C0);
            e.store(C0, addr, &i.to_le_bytes());
            e.commit(C0);
        }
        e.machine().stats().nvram_writes(WriteClass::Data)
    };
    let fine = count(1);
    let coarse = count(4);
    assert!(
        coarse >= 3 * fine,
        "4-line groups should roughly quadruple data writes ({coarse} vs {fine})"
    );
}

#[test]
fn coarser_granularity_halves_nothing_but_tracks_fewer_bits() {
    // Functional check across many lines: values land correctly even when
    // several stores hit different lines of the same group in one txn.
    let mut e = engine(8);
    let addr = e.map_new_page(C0).base();
    e.begin(C0);
    for l in 0..16u64 {
        e.store(C0, addr.add(l * 64), &(l * 7).to_le_bytes());
    }
    e.commit(C0);
    e.crash_and_recover();
    for l in 0..16u64 {
        assert_eq!(read_u64(&mut e, addr.add(l * 64)), l * 7);
    }
}

#[test]
fn consolidation_works_with_groups() {
    let cfg = MachineConfig {
        dtlb_entries: 2,
        ..MachineConfig::default()
    };
    let ssp_cfg = SspConfig {
        lines_per_subpage: 4,
        ..SspConfig::default()
    };
    let mut e = Ssp::new(cfg, ssp_cfg);
    let pages: Vec<VirtAddr> = (0..8).map(|_| e.map_new_page(C0).base()).collect();
    for sweep in 0..2u64 {
        for (i, &p) in pages.iter().enumerate() {
            e.begin(C0);
            e.store(C0, p, &(sweep * 100 + i as u64).to_le_bytes());
            e.commit(C0);
        }
    }
    assert!(e.consolidation_stats().pages > 0);
    // Copies move whole groups.
    let copied = e.consolidation_stats().lines_copied;
    assert_eq!(copied % 4, 0, "copies in group multiples, got {copied}");
    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(read_u64(&mut e, p), 100 + i as u64);
    }
    e.crash_and_recover();
    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(read_u64(&mut e, p), 100 + i as u64);
    }
}

#[test]
fn random_torture_at_256b_granularity() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use ssp_txn::history::Oracle;

    let mut e = engine(4);
    let mut rng = SmallRng::seed_from_u64(0x256);
    let mut oracle = Oracle::new();
    let pages: Vec<VirtAddr> = (0..4).map(|_| e.map_new_page(C0).base()).collect();
    for _ in 0..150 {
        e.begin(C0);
        let mut crashed = false;
        for _ in 0..rng.gen_range(1..6) {
            if rng.gen_bool(0.08) {
                crashed = true;
                break;
            }
            let addr = pages[rng.gen_range(0..4usize)].add(rng.gen_range(0..512u64) * 8);
            let val = rng.gen::<u64>().to_le_bytes();
            e.store(C0, addr, &val);
            oracle.record_store(C0, addr, &val);
        }
        if crashed {
            e.crash_and_recover();
            oracle.on_crash();
        } else {
            e.commit(C0);
            oracle.on_commit(C0);
        }
        oracle.verify(&mut e, C0).expect("consistent");
    }
}
