//! # ssp — Shadow Sub-Paging, reproduced
//!
//! A full-system reproduction of *SSP: Eliminating Redundant Writes in
//! Failure-Atomic NVRAMs via Shadow Sub-Paging* (Ni, Zhao, Litz, Bittman,
//! Miller — MICRO 2019). This facade crate re-exports the whole workspace:
//!
//! * [`simulator`] — the machine substrate (hybrid DRAM/NVRAM timing,
//!   cache hierarchy with TX bits and line retagging, TLB, crash boundary).
//! * [`txn`] — the transactional "ISA" ([`txn::engine::TxnEngine`]), the
//!   persistent heap, virtual memory, and the crash-test oracle.
//! * [`core`] — SSP itself: cache-line-level shadow paging, metadata
//!   journaling, page consolidation, checkpointing, recovery.
//! * [`baselines`] — UNDO-LOG, REDO-LOG (DHTM-like), conventional shadow
//!   paging.
//! * [`workloads`] — the nine evaluated benchmarks and the run driver.
//!
//! # Quick start
//!
//! ```
//! use ssp::core::engine::Ssp;
//! use ssp::core::SspConfig;
//! use ssp::simulator::cache::CoreId;
//! use ssp::simulator::config::MachineConfig;
//! use ssp::txn::engine::TxnEngine;
//!
//! let mut engine = Ssp::new(MachineConfig::default(), SspConfig::default());
//! let core = CoreId::new(0);
//! let addr = engine.map_new_page(core).base();
//!
//! // A failure-atomic section (ATOMIC_BEGIN .. ATOMIC_END).
//! engine.begin(core);
//! engine.store(core, addr, b"durable!");
//! engine.commit(core);
//!
//! // Power failure + recovery: committed data survives.
//! engine.crash_and_recover();
//! let mut buf = [0u8; 8];
//! engine.load(core, addr, &mut buf);
//! assert_eq!(&buf, b"durable!");
//! ```

#![warn(missing_docs)]

pub use ssp_baselines as baselines;
pub use ssp_core as core;
pub use ssp_simulator as simulator;
pub use ssp_txn as txn;
pub use ssp_workloads as workloads;

pub use ssp_baselines::{RedoLog, ShadowPaging, UndoLog};
pub use ssp_core::{LineBitmap, Ssp, SspConfig};
pub use ssp_simulator::{CoreId, Machine, MachineConfig, WriteClass};
pub use ssp_txn::{Oracle, PersistentHeap, TxnEngine};
