//! Quickstart: failure-atomic transactions with SSP.
//!
//! Runs a couple of durable transactions, injects a power failure in the
//! middle of a third, recovers, and shows that exactly the committed
//! updates survived. Also prints the NVRAM write accounting so you can see
//! SSP's headline property: no redundant data writes, only tiny metadata
//! journal records.
//!
//! Run with: `cargo run --example quickstart`

use ssp::core::engine::Ssp;
use ssp::simulator::cache::CoreId;
use ssp::simulator::config::MachineConfig;
use ssp::txn::engine::TxnEngine;
use ssp::{SspConfig, WriteClass};

fn main() {
    let mut engine = Ssp::new(MachineConfig::default(), SspConfig::default());
    let core = CoreId::new(0);

    // Map a persistent page and run two committed transactions.
    let page = engine.map_new_page(core).base();
    engine.begin(core);
    engine.store(core, page, &1u64.to_le_bytes());
    engine.store(core, page.add(64), &2u64.to_le_bytes());
    engine.commit(core);

    engine.begin(core);
    engine.store(core, page, &10u64.to_le_bytes());
    engine.commit(core);

    // A third transaction crashes before ATOMIC_END.
    engine.begin(core);
    engine.store(core, page, &999u64.to_le_bytes());
    engine.store(core, page.add(64), &999u64.to_le_bytes());
    println!("power failure mid-transaction ...");
    engine.crash_and_recover();

    let mut buf = [0u8; 8];
    engine.load(core, page, &mut buf);
    let a = u64::from_le_bytes(buf);
    engine.load(core, page.add(64), &mut buf);
    let b = u64::from_le_bytes(buf);
    println!("after recovery: slot0 = {a}, slot1 = {b}");
    assert_eq!((a, b), (10, 2), "exactly the committed state survived");

    let stats = engine.machine().stats();
    println!("\nNVRAM write accounting:");
    println!(
        "  data writes:        {}",
        stats.nvram_writes(WriteClass::Data)
    );
    println!(
        "  metadata journal:   {}",
        stats.nvram_writes(WriteClass::MetaJournal)
    );
    println!(
        "  log writes:         {}  (SSP never writes data twice)",
        stats.nvram_writes(WriteClass::Log)
    );
    println!(
        "  consolidation:      {}",
        stats.nvram_writes(WriteClass::Consolidation)
    );
    println!("\ntransactions committed: {}", engine.txn_stats().committed);
}
