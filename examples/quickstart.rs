//! Quickstart: failure-atomic transactions with SSP.
//!
//! Runs a couple of durable transactions, injects a power failure in the
//! middle of a third, recovers, and shows that exactly the committed
//! updates survived. Also prints the NVRAM write accounting so you can see
//! SSP's headline property: no redundant data writes, only tiny metadata
//! journal records.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Pass `--shared` to additionally run the shared-heap mode: two
//! clients transacting against ONE versioned store with optimistic
//! concurrency, deterministic conflict resolution and commit-time page
//! publication (`cargo run --example quickstart -- --shared`).
//!
//! Pass `--service` to run the always-on service mode: an open-loop
//! arrival generator overloads two shards, admission control sheds the
//! excess, and a scheduled power cut lands mid-service — the front end
//! recovers under fire without losing a single committed request
//! (`cargo run --example quickstart -- --service`).

use ssp::core::engine::Ssp;
use ssp::simulator::cache::CoreId;
use ssp::simulator::config::MachineConfig;
use ssp::txn::engine::TxnEngine;
use ssp::workloads::runner::{ExecMode, RunConfig};
use ssp::workloads::service::{run_service, ServiceConfig};
use ssp::workloads::shared::{run_shared, SharedHeapConfig};
use ssp::workloads::storm::StormSchedule;
use ssp::workloads::{ConflictSps, KeyDist, Sps};
use ssp::{SspConfig, WriteClass};

fn main() {
    let mut engine = Ssp::new(MachineConfig::default(), SspConfig::default());
    let core = CoreId::new(0);

    // Map a persistent page and run two committed transactions.
    let page = engine.map_new_page(core).base();
    engine.begin(core);
    engine.store(core, page, &1u64.to_le_bytes());
    engine.store(core, page.add(64), &2u64.to_le_bytes());
    engine.commit(core);

    engine.begin(core);
    engine.store(core, page, &10u64.to_le_bytes());
    engine.commit(core);

    // A third transaction crashes before ATOMIC_END.
    engine.begin(core);
    engine.store(core, page, &999u64.to_le_bytes());
    engine.store(core, page.add(64), &999u64.to_le_bytes());
    println!("power failure mid-transaction ...");
    engine.crash_and_recover();

    let mut buf = [0u8; 8];
    engine.load(core, page, &mut buf);
    let a = u64::from_le_bytes(buf);
    engine.load(core, page.add(64), &mut buf);
    let b = u64::from_le_bytes(buf);
    println!("after recovery: slot0 = {a}, slot1 = {b}");
    assert_eq!((a, b), (10, 2), "exactly the committed state survived");

    let stats = engine.machine().stats();
    println!("\nNVRAM write accounting:");
    println!(
        "  data writes:        {}",
        stats.nvram_writes(WriteClass::Data)
    );
    println!(
        "  metadata journal:   {}",
        stats.nvram_writes(WriteClass::MetaJournal)
    );
    println!(
        "  log writes:         {}  (SSP never writes data twice)",
        stats.nvram_writes(WriteClass::Log)
    );
    println!(
        "  consolidation:      {}",
        stats.nvram_writes(WriteClass::Consolidation)
    );
    println!("\ntransactions committed: {}", engine.txn_stats().committed);

    let args: Vec<String> = std::env::args().collect();
    let mut demoed = false;
    if args.iter().any(|a| a == "--shared") {
        shared_heap_demo();
        demoed = true;
    }
    if args.iter().any(|a| a == "--service") {
        service_demo();
        demoed = true;
    }
    if !demoed {
        println!("\n(re-run with `-- --shared` for the shared-heap mode,");
        println!(" or `-- --service` for overload + recovery-under-fire)");
    }
}

/// The shared-heap mode: two clients, ONE versioned store, real
/// conflicts — validated first-committer-wins at deterministic epoch
/// boundaries, losers retried after bounded backoff.
fn shared_heap_demo() {
    const CLIENTS: usize = 2;
    println!("\n== shared-heap mode ({CLIENTS} clients, one versioned store) ==");
    let shard = MachineConfig::default().shard_slice(CLIENTS);
    let cfg = RunConfig {
        txns: 200,
        warmup: 20,
        threads: CLIENTS,
        seed: 0x55d0_2019,
        mode: ExecMode::Threaded,
    };
    // 90% of transactions swap inside a region every client shares.
    let run = run_shared(
        |_| Ssp::new(shard.clone(), SspConfig::default()),
        |w| ConflictSps::uniform(256, 256, CLIENTS, w, 0.9),
        &cfg,
        &SharedHeapConfig::default(),
    );
    let s = &run.shared;
    println!(
        "committed: {}   (requested {})",
        s.committed, run.result.txns
    );
    println!(
        "aborted:   {}   ({} conflicts, {} cascades; abort rate {:.1}%)",
        s.aborted,
        s.conflicts,
        s.cascades,
        s.abort_rate() * 100.0
    );
    println!(
        "retries:   {}   ({} backoff cycles charged, worst attempt {})",
        s.retries, s.backoff_cycles, s.max_attempt
    );
    println!(
        "throughput: {:.0} committed txns per simulated second",
        run.result.tps
    );
    println!("\nthe same run is bit-identical threaded, sequential, and repeated —");
    println!("including the abort counts above (see tests/shared_heap_equivalence.rs)");
}

/// Service mode: two shards behind an open-loop arrival generator that
/// produces work faster than the engine can serve it, with a power cut
/// scheduled to land mid-service. Admission control sheds the excess;
/// recovery replays under continuing arrivals; nothing committed is
/// ever lost.
fn service_demo() {
    const CLIENTS: usize = 2;
    println!("\n== service mode ({CLIENTS} clients, overload + recovery under fire) ==");
    let shard = MachineConfig::default().shard_slice(CLIENTS);
    let cfg = RunConfig {
        txns: 200,
        warmup: 20,
        threads: CLIENTS,
        seed: 0x55d0_2019,
        mode: ExecMode::Threaded,
    };
    // Arrivals every ~150 cycles per shard — hotter than the engine can
    // drain — plus a power cut every 10k cycles of virtual time.
    let svc = ServiceConfig {
        period_cycles: 150,
        queue_capacity: 32,
        deadline_cycles: 20_000,
        storm: Some(StormSchedule::every_cycles(10_000)),
        ..ServiceConfig::default()
    };
    let run = run_service(
        |_| Ssp::new(shard.clone(), SspConfig::default()),
        |_| Sps::new(512, KeyDist::uniform(512)),
        &cfg,
        &svc,
    );
    let s = &run.service;
    println!(
        "arrivals:  {}   (open loop, deterministic virtual time)",
        s.arrivals
    );
    println!(
        "served:    {}   ({} group commits, {} retried after a cut)",
        s.served, s.groups, s.retried
    );
    println!(
        "shed:      {}   ({} at admission, {} retry give-ups; {} expired)",
        s.shed, s.shed_admission, s.shed_retry, s.expired
    );
    println!(
        "goodput:   {:.1}%  of arrivals committed",
        s.served as f64 * 100.0 / s.arrivals as f64
    );
    println!(
        "power cuts: {}  ({} cycles of unavailability, {} requests lost)",
        s.storms, s.unavailability_cycles, s.lost
    );
    assert_eq!(s.lost, 0, "recovery under fire must lose nothing");
    assert!(s.conserves(), "accounting must conserve: {s:?}");
    println!("\nevery counter above is bit-identical threaded, sequential, and");
    println!("repeated — shed counts included (see tests/service_mode.rs)");
}
