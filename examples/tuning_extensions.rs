//! The paper's discussed extensions in action: sub-page granularity
//! (Section 4.3) and wear-levelling spare rotation (Section 4.1.2).
//!
//! Compares 64 B vs 256 B tracking granularity on a sparse-update workload
//! (the TLB-cost vs write-amplification trade-off), then demonstrates
//! crash-atomic spare rotation.
//!
//! Run with: `cargo run --release --example tuning_extensions`
//!
//! Pass `--shared` to additionally sweep the shared-heap conflict dial:
//! the OCC mode's abort/retry behaviour as contention rises
//! (`cargo run --release --example tuning_extensions -- --shared`).

use ssp::core::engine::Ssp;
use ssp::simulator::cache::CoreId;
use ssp::simulator::config::MachineConfig;
use ssp::txn::engine::TxnEngine;
use ssp::workloads::runner::{ExecMode, RunConfig};
use ssp::workloads::shared::{run_shared, SharedHeapConfig};
use ssp::workloads::ConflictSps;
use ssp::{SspConfig, WriteClass};

fn sparse_updates(lines_per_subpage: usize) -> (u64, u64) {
    let ssp_cfg = SspConfig {
        lines_per_subpage,
        ..SspConfig::default()
    };
    let mut engine = Ssp::new(MachineConfig::default(), ssp_cfg);
    let core = CoreId::new(0);
    let page = engine.map_new_page(core).base();
    // 200 transactions, each updating one 8-byte field on a different line.
    for i in 0..200u64 {
        engine.begin(core);
        engine.store(core, page.add((i % 64) * 64), &i.to_le_bytes());
        engine.commit(core);
    }
    let stats = engine.machine().stats();
    (
        stats.nvram_writes(WriteClass::Data),
        engine.machine().elapsed_cycles() / 200,
    )
}

fn main() {
    println!("Section 4.3 — sub-page granularity on sparse 8-byte updates\n");
    println!(
        "{:<12} {:>12} {:>14} {:>12}",
        "granularity", "bitmap bits", "data writes", "cyc/txn"
    );
    for (lps, label) in [(1usize, "64 B"), (4, "256 B"), (8, "512 B")] {
        let (writes, cycles) = sparse_updates(lps);
        println!("{label:<12} {:>12} {writes:>14} {cycles:>12}", 64 / lps);
    }
    println!("\nCoarser tracking shrinks the per-TLB-entry bitmaps (the paper's");
    println!("hardware-cost argument) but flushes whole groups: write");
    println!("amplification for sparse updates.\n");

    println!("Section 4.1.2 — wear-levelling spare rotation\n");
    let mut engine = Ssp::new(MachineConfig::default(), SspConfig::default());
    let core = CoreId::new(0);
    let pages: Vec<_> = (0..16).map(|_| engine.map_new_page(core).base()).collect();
    for (i, &p) in pages.iter().enumerate() {
        engine.begin(core);
        engine.store(core, p, &(i as u64).to_le_bytes());
        engine.commit(core);
    }
    engine.crash_and_recover(); // quiesce: all pages leave the TLBs
    let rotated = engine.rotate_spares(256);
    println!("rotated {rotated} slot spares onto fresh shadow-pool pages");
    // Everything still readable, including across another power cycle.
    engine.crash_and_recover();
    for (i, &p) in pages.iter().enumerate() {
        let mut buf = [0u8; 8];
        engine.load(core, p, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), i as u64);
    }
    println!("all data verified after rotation + crash + recovery");

    if std::env::args().any(|a| a == "--shared") {
        shared_dial_sweep();
    } else {
        println!("\n(re-run with `-- --shared` to sweep the shared-heap conflict dial)");
    }
}

/// The shared-heap conflict dial: 4 clients on one versioned store,
/// sweeping the fraction of transactions that touch the shared region.
fn shared_dial_sweep() {
    const CLIENTS: usize = 4;
    println!("\nShared-heap mode — conflict dial sweep ({CLIENTS} clients)\n");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>10}",
        "dial", "committed", "aborted", "abort rate", "cyc/txn"
    );
    let shard = MachineConfig::default().shard_slice(CLIENTS);
    for dial in [0.0, 0.3, 0.6, 0.9] {
        let cfg = RunConfig {
            txns: 200,
            warmup: 20,
            threads: CLIENTS,
            seed: 0x55d0_2019,
            mode: ExecMode::Threaded,
        };
        let run = run_shared(
            |_| Ssp::new(shard.clone(), SspConfig::default()),
            |w| ConflictSps::uniform(256, 256, CLIENTS, w, dial),
            &cfg,
            &SharedHeapConfig::default(),
        );
        let s = &run.shared;
        println!(
            "{dial:<8} {:>10} {:>10} {:>11.1}% {:>10}",
            s.committed,
            s.aborted,
            s.abort_rate() * 100.0,
            run.result.elapsed_cycles / run.result.txns.max(1)
        );
    }
    println!("\nDial 0 = line-disjoint working sets: zero aborts by construction.");
    println!("Raising the dial concentrates writes on the shared region and the");
    println!("first-committer-wins validator aborts (and deterministically");
    println!("retries) the losers — same counters on every run, threaded or not.");
}
