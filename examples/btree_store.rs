//! A durable B+-tree store with crash recovery.
//!
//! Loads a batch of records into the persistent B+-tree, simulates a power
//! failure during a later batch, recovers, and verifies the tree: every
//! committed batch is intact, the interrupted batch vanished atomically.
//!
//! Run with: `cargo run --release --example btree_store`

use ssp::core::engine::Ssp;
use ssp::simulator::cache::CoreId;
use ssp::simulator::config::MachineConfig;
use ssp::txn::engine::TxnEngine;
use ssp::txn::heap::PersistentHeap;
use ssp::workloads::BTree;
use ssp::SspConfig;

fn main() {
    let mut engine = Ssp::new(MachineConfig::default(), SspConfig::default());
    let core = CoreId::new(0);

    // Create the heap and the tree in one atomic section.
    engine.begin(core);
    let heap = PersistentHeap::create(&mut engine, core);
    let tree = BTree::create(&mut engine, core, heap);
    engine.commit(core);

    // Batch-load records: each batch of 10 inserts is one transaction.
    let mut expected = Vec::new();
    for batch in 0..20u64 {
        engine.begin(core);
        for i in 0..10u64 {
            let key = batch * 10 + i;
            tree.insert(&mut engine, core, key, key * 1000);
            expected.push(key);
        }
        engine.commit(core);
    }
    println!("loaded {} records in 20 committed batches", expected.len());

    // Batch 21 is interrupted by a power failure.
    engine.begin(core);
    for i in 0..10u64 {
        tree.insert(&mut engine, core, 10_000 + i, 1);
    }
    println!("crash during batch 21 ...");
    engine.crash_and_recover();

    // Verify: the leaf chain holds exactly the committed keys.
    let keys = tree.keys(&mut engine, core);
    assert_eq!(keys, expected, "committed batches intact, torn batch gone");
    for &k in &expected {
        assert_eq!(tree.get(&mut engine, core, k), Some(k * 1000));
    }
    assert_eq!(tree.get(&mut engine, core, 10_000), None);
    println!(
        "verified {} records after recovery; torn batch absent",
        keys.len()
    );

    // Point lookups and deletes keep working post-recovery.
    engine.begin(core);
    tree.remove(&mut engine, core, 0);
    tree.insert(&mut engine, core, 777_777, 42);
    engine.commit(core);
    assert_eq!(tree.get(&mut engine, core, 777_777), Some(42));
    println!("post-recovery updates committed fine");

    let stats = engine.machine().stats();
    println!(
        "\ntotals: {} NVRAM writes for {} committed txns ({} TLB misses, {} flip broadcasts)",
        stats.nvram_writes_total(),
        engine.txn_stats().committed,
        stats.tlb_misses,
        stats.flip_broadcasts,
    );
}
