//! Crash-consistency torture demo: random transactions, random crash
//! points, oracle verification — across all three engines.
//!
//! Each round runs a few transactions against a persistent array, records
//! every store in the byte-level oracle, crashes at a random point, runs
//! recovery, and checks that the engine's state equals the oracle's
//! committed state (committed transactions fully present, in-flight ones
//! fully absent).
//!
//! Run with: `cargo run --release --example crash_recovery`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssp::baselines::{RedoLog, UndoLog};
use ssp::core::engine::Ssp;
use ssp::simulator::addr::VirtAddr;
use ssp::simulator::cache::CoreId;
use ssp::simulator::config::MachineConfig;
use ssp::txn::engine::TxnEngine;
use ssp::txn::history::Oracle;
use ssp::SspConfig;

const PAGES: u64 = 8;
const ROUNDS: usize = 30;

fn torture<E: TxnEngine>(engine: &mut E, seed: u64) -> u64 {
    let core = CoreId::new(0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut oracle = Oracle::new();
    let pages: Vec<VirtAddr> = (0..PAGES)
        .map(|_| engine.map_new_page(core).base())
        .collect();
    let mut crashes = 0;

    for round in 0..ROUNDS {
        let txns_this_round = rng.gen_range(1..5);
        // The crash lands inside one of the transactions of this round.
        let crash_in = rng.gen_range(0..txns_this_round + 1);
        for t in 0..txns_this_round {
            engine.begin(core);
            let stores = rng.gen_range(1..8);
            let crash_at = if t == crash_in {
                Some(rng.gen_range(0..stores + 1))
            } else {
                None
            };
            let mut crashed = false;
            for s in 0..stores {
                if crash_at == Some(s) {
                    crashed = true;
                    break;
                }
                let page = pages[rng.gen_range(0..PAGES as usize)];
                let addr = page.add(rng.gen_range(0..512u64) * 8);
                let value = rng.gen::<u64>().to_le_bytes();
                engine.store(core, addr, &value);
                oracle.record_store(core, addr, &value);
            }
            if crashed || crash_at == Some(stores) {
                engine.crash_and_recover();
                oracle.on_crash();
                crashes += 1;
                break;
            }
            engine.commit(core);
            oracle.on_commit(core);
        }
        oracle
            .verify(engine, core)
            .unwrap_or_else(|d| panic!("round {round}: {d}"));
    }
    crashes
}

fn main() {
    let cfg = MachineConfig::default();

    let mut ssp = Ssp::new(cfg.clone(), SspConfig::default());
    let c = torture(&mut ssp, 1);
    println!("SSP:      {ROUNDS} rounds, {c} injected crashes — all states verified");

    let mut undo = UndoLog::new(cfg.clone());
    let c = torture(&mut undo, 2);
    println!("UNDO-LOG: {ROUNDS} rounds, {c} injected crashes — all states verified");

    let mut redo = RedoLog::new(cfg);
    let c = torture(&mut redo, 3);
    println!("REDO-LOG: {ROUNDS} rounds, {c} injected crashes — all states verified");

    println!("\nevery committed transaction survived; every torn one vanished");
}
