//! A persistent key-value store on three different failure-atomicity
//! engines.
//!
//! Builds the memcached-like LRU cache from `ssp-workloads` on SSP,
//! UNDO-LOG and REDO-LOG, drives the same memslap-style mix (90% SET)
//! against each, and compares throughput and NVRAM write traffic — a
//! miniature of the paper's Table 4/5 experiment.
//!
//! Run with: `cargo run --release --example persistent_kv`

use ssp::baselines::{RedoLog, UndoLog};
use ssp::core::engine::Ssp;
use ssp::simulator::config::MachineConfig;
use ssp::txn::engine::TxnEngine;
use ssp::workloads::runner::{run, RunConfig};
use ssp::workloads::{KeyDist, MemcachedWorkload};
use ssp::SspConfig;

fn drive<E: TxnEngine>(engine: &mut E) -> (f64, u64, u64) {
    let mut workload = MemcachedWorkload::new(KeyDist::paper_zipf(2048), 512);
    let cfg = RunConfig {
        txns: 1500,
        warmup: 200,
        threads: 4, // the paper's "four clients"
        seed: 42,
        ..RunConfig::default()
    };
    let result = run(engine, &mut workload, &cfg);
    (result.tps, result.nvram_writes(), result.logging_writes())
}

fn main() {
    let cfg = MachineConfig::default();

    let mut ssp = Ssp::new(cfg.clone(), SspConfig::default());
    let mut undo = UndoLog::new(cfg.clone());
    let mut redo = RedoLog::new(cfg);

    let (ssp_tps, ssp_writes, ssp_log) = drive(&mut ssp);
    let (undo_tps, undo_writes, undo_log) = drive(&mut undo);
    let (redo_tps, redo_writes, redo_log) = drive(&mut redo);

    println!("Memcached-like KV cache, 4 clients, 90% SET, zipfian keys\n");
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "engine", "kTPS", "NVRAM writes", "logging writes"
    );
    for (name, tps, writes, log) in [
        ("UNDO-LOG", undo_tps, undo_writes, undo_log),
        ("REDO-LOG", redo_tps, redo_writes, redo_log),
        ("SSP", ssp_tps, ssp_writes, ssp_log),
    ] {
        println!("{name:<10} {:>12.0} {writes:>14} {log:>14}", tps / 1000.0);
    }

    println!(
        "\nSSP throughput: {:+.0}% vs UNDO-LOG, {:+.0}% vs REDO-LOG",
        100.0 * (ssp_tps / undo_tps - 1.0),
        100.0 * (ssp_tps / redo_tps - 1.0),
    );
    println!(
        "SSP write saving: {:.0}% vs UNDO-LOG, {:.0}% vs REDO-LOG",
        100.0 * (1.0 - ssp_writes as f64 / undo_writes as f64),
        100.0 * (1.0 - ssp_writes as f64 / redo_writes as f64),
    );
}
