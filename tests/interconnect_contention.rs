//! The cross-shard memory interconnect: determinism contract and
//! contention shape.
//!
//! Two families of assertions:
//!
//! 1. **Determinism** — with the interconnect *enabled*, the PR-2
//!    contract still holds for every engine: a threaded run produces
//!    bit-identical merged counters, per-shard counters and committed
//!    persistent state as the `ExecMode::Sequential` reference and as
//!    itself across repeats. Contention is simulated from shard-local
//!    quantities only, so host scheduling must never leak in.
//! 2. **Shape** — clients sharing one channel group pay a monotonically
//!    growing per-transaction cost as the client count grows 1 → 8, while
//!    clients with private (partitioned) channel groups stay flat.

use ssp::baselines::{RedoLog, UndoLog};
use ssp::core::engine::Ssp;
use ssp::simulator::config::{InterconnectConfig, MachineConfig};
use ssp::txn::engine::TxnEngine;
use ssp::workloads::runner::{run_parallel, ExecMode, ParallelRun, RunConfig};
use ssp::workloads::{KeyDist, Sps};
use ssp::SspConfig;

const THREADS: usize = 4;
const REPEATS: usize = 3;

fn cfg(mode: ExecMode) -> RunConfig {
    RunConfig {
        txns: 240,
        warmup: 40,
        threads: THREADS,
        seed: 0x1C_2019,
        mode,
    }
}

/// A shard slice with the given interconnect enabled and a small epoch so
/// several arbitration rounds happen per run.
fn shard_with(threads: usize, interconnect: InterconnectConfig) -> MachineConfig {
    let mut shard = MachineConfig::default().shard_slice(threads);
    shard.interconnect = interconnect;
    shard.interconnect.epoch_cycles = 10_000;
    shard
}

fn sps_run_with<E: TxnEngine>(
    mk: &(impl Fn(MachineConfig) -> E + Sync),
    mode: ExecMode,
    interconnect: InterconnectConfig,
) -> ParallelRun<E> {
    let shard = shard_with(THREADS, interconnect);
    run_parallel(
        move |_| mk(shard.clone()),
        |_| Sps::new(2048, KeyDist::uniform(2048)),
        &cfg(mode),
    )
}

fn sps_run<E: TxnEngine>(
    mk: &(impl Fn(MachineConfig) -> E + Sync),
    mode: ExecMode,
) -> ParallelRun<E> {
    sps_run_with(mk, mode, InterconnectConfig::shared())
}

fn committed_fingerprints<E: TxnEngine>(run: &mut ParallelRun<E>) -> Vec<u64> {
    run.shards
        .iter_mut()
        .map(|s| {
            s.engine.crash_and_recover();
            s.engine.machine().nvram_fingerprint()
        })
        .collect()
}

/// Threaded == sequential reference == repeated threaded runs, with the
/// given interconnect enabled, for one engine factory.
fn assert_engine_equivalence_with<E: TxnEngine>(
    mk: impl Fn(MachineConfig) -> E + Sync,
    interconnect: InterconnectConfig,
) {
    let mut reference = sps_run_with(&mk, ExecMode::Sequential, interconnect);
    assert!(
        reference.result.stats.bankq_row_hits + reference.result.stats.bankq_row_misses > 0,
        "the controller must have arbitrated the measured phase"
    );
    let ref_prints = committed_fingerprints(&mut reference);

    for rep in 0..REPEATS {
        let mut threaded = sps_run_with(&mk, ExecMode::Threaded, interconnect);
        assert_eq!(
            threaded.result, reference.result,
            "merged counters diverged from the sequential reference (rep {rep})"
        );
        for (t, r) in threaded.shards.iter().zip(&reference.shards) {
            assert_eq!(
                t.stats, r.stats,
                "shard {} machine counters (rep {rep})",
                t.worker
            );
            assert_eq!(
                t.elapsed_cycles, r.elapsed_cycles,
                "shard {} simulated cycles (rep {rep})",
                t.worker
            );
        }
        assert_eq!(
            committed_fingerprints(&mut threaded),
            ref_prints,
            "committed persistent state diverged (rep {rep})"
        );
    }
}

fn assert_engine_equivalence<E: TxnEngine>(mk: impl Fn(MachineConfig) -> E + Sync) {
    assert_engine_equivalence_with(mk, InterconnectConfig::shared());
}

#[test]
fn ssp_contended_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(|cfg| Ssp::new(cfg, SspConfig::default()));
}

#[test]
fn undo_contended_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(UndoLog::new);
}

#[test]
fn redo_contended_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(RedoLog::new);
}

/// The full PR-7 configuration — fair bounded arbitration plus the
/// shared-LLC and coherence actors — holds the same determinism contract:
/// threaded == sequential == repeats, bit for bit, for every engine.
#[test]
fn ssp_hierarchy_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence_with(
        |cfg| Ssp::new(cfg, SspConfig::default()),
        InterconnectConfig::shared_hierarchy(),
    );
}

#[test]
fn undo_hierarchy_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence_with(UndoLog::new, InterconnectConfig::shared_hierarchy());
}

#[test]
fn redo_hierarchy_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence_with(RedoLog::new, InterconnectConfig::shared_hierarchy());
}

/// Runs `clients` SSP shards of constant size and workload through the
/// given interconnect; returns cycles per transaction on the critical
/// path (every client executes `txns_per_client`).
fn per_txn_cycles(interconnect: InterconnectConfig, clients: usize) -> u64 {
    const TXNS_PER_CLIENT: u64 = 80;
    // A constant per-client slice (an eighth of the machine) so the only
    // variable along a sweep is the client count.
    let mut shard = MachineConfig::default().shard_slice(8);
    shard.interconnect = interconnect;
    let run_cfg = RunConfig {
        txns: TXNS_PER_CLIENT * clients as u64,
        warmup: 20 * clients as u64,
        threads: clients,
        seed: 0x55d0_2019,
        mode: ExecMode::Threaded,
    };
    // 8192 elements = 32 NVRAM rows per client: wide enough to spread
    // over the shared bank pool (see the fig5b_contention bench).
    let p = run_parallel(
        move |_| Ssp::new(shard.clone(), SspConfig::default()),
        |_| Sps::new(8192, KeyDist::uniform(8192)),
        &run_cfg,
    );
    p.result.elapsed_cycles / TXNS_PER_CLIENT
}

#[test]
fn shared_channels_grow_monotonically_while_partitioned_stays_flat() {
    let shared: Vec<u64> = [1, 2, 4, 8]
        .iter()
        .map(|&n| per_txn_cycles(InterconnectConfig::shared(), n))
        .collect();
    let partitioned: Vec<u64> = [1, 2, 4, 8]
        .iter()
        .map(|&n| per_txn_cycles(InterconnectConfig::partitioned(8, 4), n))
        .collect();

    // Clients sharing one channel group: per-txn cost never decreases and
    // eight clients pay strictly more than one.
    for w in shared.windows(2) {
        assert!(w[1] >= w[0], "shared curve dipped: {shared:?}");
    }
    assert!(
        shared[3] > shared[0],
        "eight clients must contend measurably: {shared:?}"
    );

    // Private channel groups: adding clients leaves per-client cost flat
    // (the critical path can only drift by the max over more identical
    // clients — allow a fraction of a percent).
    for &c in &partitioned {
        let base = partitioned[0];
        assert!(
            c >= base && c - base <= base / 100 + 2,
            "partitioned curve is not flat: {partitioned:?}"
        );
    }

    // And contention is the only difference: at one client the two
    // configurations must agree exactly (no cross traffic exists).
    assert_eq!(shared[0], partitioned[0]);
}

/// Fair, bounded bank arbitration fixes the fig5b saturation collapse:
/// the shared curve stays monotone, but the 8-client point is bounded —
/// no shard can occupy a bank more than its in-flight cap deep, so
/// saturation costs grow like the client count rather than exploding.
#[test]
fn fair_arbitration_bounds_the_shared_collapse() {
    let fair: Vec<u64> = [1, 2, 4, 8]
        .iter()
        .map(|&n| per_txn_cycles(InterconnectConfig::shared_fair(), n))
        .collect();
    for w in fair.windows(2) {
        assert!(w[1] >= w[0], "fair shared curve dipped: {fair:?}");
    }
    assert!(
        fair[3] > fair[0],
        "eight clients must still contend measurably: {fair:?}"
    );
    // The bug this PR fixes: under FIFO grants the 4 → 8 step blew up
    // ~16x. With per-shard caps the step is bounded like the added load.
    assert!(
        fair[3] <= 5 * fair[2],
        "8-client point not bounded vs 4 clients: {fair:?}"
    );
    assert!(
        fair[3] <= 10 * fair[0],
        "8-client point not bounded vs 1 client: {fair:?}"
    );
}

/// The full hierarchy actors only ever add time on top of the fair
/// arbitration — the curve stays monotone and bounded with the
/// shared-LLC and coherence actors enabled too.
#[test]
fn hierarchy_actors_keep_the_curve_monotone_and_bounded() {
    let curve: Vec<u64> = [1, 2, 4, 8]
        .iter()
        .map(|&n| per_txn_cycles(InterconnectConfig::shared_hierarchy(), n))
        .collect();
    for w in curve.windows(2) {
        assert!(w[1] >= w[0], "hierarchy curve dipped: {curve:?}");
    }
    assert!(
        curve[3] <= 10 * curve[0],
        "8-client point not bounded vs 1 client: {curve:?}"
    );
}

/// The interconnect shifts clocks and counters, never bytes: every
/// shard's committed persistent state is identical to the same seed's
/// interconnect-disabled run.
#[test]
fn contention_never_changes_committed_state() {
    let mut contended = sps_run(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Threaded,
    );
    let plain_shard = MachineConfig::default().shard_slice(THREADS);
    let mut plain = run_parallel(
        move |_| Ssp::new(plain_shard.clone(), SspConfig::default()),
        |_| Sps::new(2048, KeyDist::uniform(2048)),
        &cfg(ExecMode::Threaded),
    );
    assert!(contended.result.elapsed_cycles >= plain.result.elapsed_cycles);
    assert_eq!(
        committed_fingerprints(&mut contended),
        committed_fingerprints(&mut plain),
        "contention must be time-only"
    );
}

/// Same byte-identity contract with every PR-7 actor switched on: fair
/// arbitration, the shared LLC and the coherence actor shift clocks and
/// counters, never the committed persistent bytes.
#[test]
fn hierarchy_actors_never_change_committed_state() {
    let mut contended = sps_run_with(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Threaded,
        InterconnectConfig::shared_hierarchy(),
    );
    let plain_shard = MachineConfig::default().shard_slice(THREADS);
    let mut plain = run_parallel(
        move |_| Ssp::new(plain_shard.clone(), SspConfig::default()),
        |_| Sps::new(2048, KeyDist::uniform(2048)),
        &cfg(ExecMode::Threaded),
    );
    assert_eq!(
        committed_fingerprints(&mut contended),
        committed_fingerprints(&mut plain),
        "the hierarchy actors must be time-only"
    );
}

/// Conservation of charge: over a multi-epoch run with every actor on,
/// summing the per-shard `bankq_*`/LLC/coherence counters reproduces the
/// arbiter's own running totals exactly — every cycle the controller
/// charges lands in exactly one shard's stats, none dropped, none
/// double-billed.
#[test]
fn per_shard_counters_sum_to_the_arbiters_totals() {
    use ssp::simulator::addr::PhysAddr;
    use ssp::simulator::cache::CoreId;
    use ssp::simulator::interconnect::Interconnect;
    use ssp::simulator::machine::Machine;
    use ssp::simulator::phys::NVRAM_PPN_BASE;
    use ssp::simulator::stats::WriteClass;

    const SHARDS: usize = 3;
    let mut cfg = MachineConfig::default().shard_slice(4);
    cfg.interconnect = InterconnectConfig::shared_hierarchy();
    // A tiny shared LLC so fills constantly evict across shards and the
    // coherence actor has real invalidations to charge.
    cfg.interconnect.llc_sets = 8;
    cfg.interconnect.llc_ways = 2;

    let mut machines: Vec<Machine> = (0..SHARDS).map(|_| Machine::new(cfg.clone())).collect();
    let mut ic = Interconnect::new(&cfg, SHARDS);
    let core = CoreId::new(0);
    let mut streams = vec![Vec::new(); SHARDS];
    let mut llc_streams = vec![Vec::new(); SHARDS];

    for epoch in 0..6u64 {
        for (s, m) in machines.iter_mut().enumerate() {
            for i in 0..48u64 {
                // Strided lines that overlap across shards, so the same
                // banks and LLC sets see traffic from every owner.
                let line = (epoch * 48 + i * 7 + s as u64) % 384;
                let addr = PhysAddr::new(NVRAM_PPN_BASE * 4096 + line * 64);
                m.write(core, addr, &[s as u8, i as u8], false);
                m.flush(Some(core), addr, WriteClass::Data);
            }
        }
        for (s, m) in machines.iter_mut().enumerate() {
            m.take_mem_events_into(&mut streams[s]);
            m.take_llc_events_into(&mut llc_streams[s]);
        }
        let charges = ic.arbitrate_epoch(&streams, &llc_streams);
        for (s, m) in machines.iter_mut().enumerate() {
            m.apply_epoch_charge(core, &charges[s]);
        }
    }

    let totals = ic.totals();
    assert!(
        totals.row_hits + totals.row_misses > 0,
        "the run must have arbitrated real traffic"
    );
    let sum = |f: fn(&ssp::simulator::stats::MachineStats) -> u64| -> u64 {
        machines.iter().map(|m| f(m.stats())).sum()
    };
    assert_eq!(sum(|s| s.bankq_delay_cycles), totals.delay_cycles);
    assert_eq!(sum(|s| s.bankq_conflicts), totals.conflicts);
    assert_eq!(sum(|s| s.bankq_row_hits), totals.row_hits);
    assert_eq!(sum(|s| s.bankq_row_misses), totals.row_misses);
    assert_eq!(sum(|s| s.bankq_stall_cycles), totals.port_stall_cycles);
    assert_eq!(sum(|s| s.llc_extra_misses), totals.llc_extra_misses);
    assert_eq!(sum(|s| s.llc_delay_cycles), totals.llc_delay_cycles);
    assert_eq!(sum(|s| s.coh_cross_invalidations), totals.coh_invalidations);
    assert_eq!(sum(|s| s.coh_cross_delay_cycles), totals.coh_delay_cycles);
}
