//! The cross-shard memory interconnect: determinism contract and
//! contention shape.
//!
//! Two families of assertions:
//!
//! 1. **Determinism** — with the interconnect *enabled*, the PR-2
//!    contract still holds for every engine: a threaded run produces
//!    bit-identical merged counters, per-shard counters and committed
//!    persistent state as the `ExecMode::Sequential` reference and as
//!    itself across repeats. Contention is simulated from shard-local
//!    quantities only, so host scheduling must never leak in.
//! 2. **Shape** — clients sharing one channel group pay a monotonically
//!    growing per-transaction cost as the client count grows 1 → 8, while
//!    clients with private (partitioned) channel groups stay flat.

use ssp::baselines::{RedoLog, UndoLog};
use ssp::core::engine::Ssp;
use ssp::simulator::config::{InterconnectConfig, MachineConfig};
use ssp::txn::engine::TxnEngine;
use ssp::workloads::runner::{run_parallel, ExecMode, ParallelRun, RunConfig};
use ssp::workloads::{KeyDist, Sps};
use ssp::SspConfig;

const THREADS: usize = 4;
const REPEATS: usize = 3;

fn cfg(mode: ExecMode) -> RunConfig {
    RunConfig {
        txns: 240,
        warmup: 40,
        threads: THREADS,
        seed: 0x1C_2019,
        mode,
    }
}

/// A shard slice with the shared-channel-group interconnect enabled and a
/// small epoch so several arbitration rounds happen per run.
fn contended_shard(threads: usize) -> MachineConfig {
    let mut shard = MachineConfig::default().shard_slice(threads);
    shard.interconnect = InterconnectConfig::shared();
    shard.interconnect.epoch_cycles = 10_000;
    shard
}

fn sps_run<E: TxnEngine>(
    mk: &(impl Fn(MachineConfig) -> E + Sync),
    mode: ExecMode,
) -> ParallelRun<E> {
    let shard = contended_shard(THREADS);
    run_parallel(
        move |_| mk(shard.clone()),
        |_| Sps::new(2048, KeyDist::uniform(2048)),
        &cfg(mode),
    )
}

fn committed_fingerprints<E: TxnEngine>(run: &mut ParallelRun<E>) -> Vec<u64> {
    run.shards
        .iter_mut()
        .map(|s| {
            s.engine.crash_and_recover();
            s.engine.machine().nvram_fingerprint()
        })
        .collect()
}

/// Threaded == sequential reference == repeated threaded runs, with the
/// interconnect enabled, for one engine factory.
fn assert_engine_equivalence<E: TxnEngine>(mk: impl Fn(MachineConfig) -> E + Sync) {
    let mut reference = sps_run(&mk, ExecMode::Sequential);
    assert!(
        reference.result.stats.bankq_row_hits + reference.result.stats.bankq_row_misses > 0,
        "the controller must have arbitrated the measured phase"
    );
    let ref_prints = committed_fingerprints(&mut reference);

    for rep in 0..REPEATS {
        let mut threaded = sps_run(&mk, ExecMode::Threaded);
        assert_eq!(
            threaded.result, reference.result,
            "merged counters diverged from the sequential reference (rep {rep})"
        );
        for (t, r) in threaded.shards.iter().zip(&reference.shards) {
            assert_eq!(
                t.stats, r.stats,
                "shard {} machine counters (rep {rep})",
                t.worker
            );
            assert_eq!(
                t.elapsed_cycles, r.elapsed_cycles,
                "shard {} simulated cycles (rep {rep})",
                t.worker
            );
        }
        assert_eq!(
            committed_fingerprints(&mut threaded),
            ref_prints,
            "committed persistent state diverged (rep {rep})"
        );
    }
}

#[test]
fn ssp_contended_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(|cfg| Ssp::new(cfg, SspConfig::default()));
}

#[test]
fn undo_contended_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(UndoLog::new);
}

#[test]
fn redo_contended_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(RedoLog::new);
}

/// Runs `clients` SSP shards of constant size and workload through the
/// given interconnect; returns cycles per transaction on the critical
/// path (every client executes `txns_per_client`).
fn per_txn_cycles(interconnect: InterconnectConfig, clients: usize) -> u64 {
    const TXNS_PER_CLIENT: u64 = 80;
    // A constant per-client slice (an eighth of the machine) so the only
    // variable along a sweep is the client count.
    let mut shard = MachineConfig::default().shard_slice(8);
    shard.interconnect = interconnect;
    let run_cfg = RunConfig {
        txns: TXNS_PER_CLIENT * clients as u64,
        warmup: 20 * clients as u64,
        threads: clients,
        seed: 0x55d0_2019,
        mode: ExecMode::Threaded,
    };
    // 8192 elements = 32 NVRAM rows per client: wide enough to spread
    // over the shared bank pool (see the fig5b_contention bench).
    let p = run_parallel(
        move |_| Ssp::new(shard.clone(), SspConfig::default()),
        |_| Sps::new(8192, KeyDist::uniform(8192)),
        &run_cfg,
    );
    p.result.elapsed_cycles / TXNS_PER_CLIENT
}

#[test]
fn shared_channels_grow_monotonically_while_partitioned_stays_flat() {
    let shared: Vec<u64> = [1, 2, 4, 8]
        .iter()
        .map(|&n| per_txn_cycles(InterconnectConfig::shared(), n))
        .collect();
    let partitioned: Vec<u64> = [1, 2, 4, 8]
        .iter()
        .map(|&n| per_txn_cycles(InterconnectConfig::partitioned(8, 4), n))
        .collect();

    // Clients sharing one channel group: per-txn cost never decreases and
    // eight clients pay strictly more than one.
    for w in shared.windows(2) {
        assert!(w[1] >= w[0], "shared curve dipped: {shared:?}");
    }
    assert!(
        shared[3] > shared[0],
        "eight clients must contend measurably: {shared:?}"
    );

    // Private channel groups: adding clients leaves per-client cost flat
    // (the critical path can only drift by the max over more identical
    // clients — allow a fraction of a percent).
    for &c in &partitioned {
        let base = partitioned[0];
        assert!(
            c >= base && c - base <= base / 100 + 2,
            "partitioned curve is not flat: {partitioned:?}"
        );
    }

    // And contention is the only difference: at one client the two
    // configurations must agree exactly (no cross traffic exists).
    assert_eq!(shared[0], partitioned[0]);
}

/// The interconnect shifts clocks and counters, never bytes: every
/// shard's committed persistent state is identical to the same seed's
/// interconnect-disabled run.
#[test]
fn contention_never_changes_committed_state() {
    let mut contended = sps_run(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Threaded,
    );
    let plain_shard = MachineConfig::default().shard_slice(THREADS);
    let mut plain = run_parallel(
        move |_| Ssp::new(plain_shard.clone(), SspConfig::default()),
        |_| Sps::new(2048, KeyDist::uniform(2048)),
        &cfg(ExecMode::Threaded),
    );
    assert!(contended.result.elapsed_cycles >= plain.result.elapsed_cycles);
    assert_eq!(
        committed_fingerprints(&mut contended),
        committed_fingerprints(&mut plain),
        "contention must be time-only"
    );
}
