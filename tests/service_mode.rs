//! The determinism contract of service mode: an always-on open-loop
//! front end with admission control, deadlines, retries, group commit
//! and scheduled power cuts must be *bit-identical* across
//! [`ExecMode::Threaded`], the sequential reference, and repeated runs —
//! served/shed/expired/retried counters, latency histograms, drain
//! curves and NVRAM fingerprints included — for every engine.
//!
//! Also covered: exact accounting conservation under overload
//! (`arrivals == served + shed + expired + in_queue` at drain) and the
//! zero-loss recovery-under-fire contract (storms trip mid-service, the
//! outage is visible as a non-zero unavailability window, and no
//! committed request is ever lost).

use ssp::baselines::{RedoLog, ShadowPaging, UndoLog};
use ssp::core::engine::Ssp;
use ssp::simulator::config::MachineConfig;
use ssp::txn::engine::TxnEngine;
use ssp::workloads::runner::{ExecMode, RunConfig};
use ssp::workloads::service::{run_service, AdmissionPolicy, ServiceConfig, ServiceRun};
use ssp::workloads::storm::StormSchedule;
use ssp::workloads::{KeyDist, Sps};
use ssp::SspConfig;

const REPEATS: usize = 5;
const THREADS: usize = 2;

fn cfg(mode: ExecMode) -> RunConfig {
    RunConfig {
        txns: 160,
        warmup: 16,
        threads: THREADS,
        seed: 0x5EA7_1CE5,
        mode,
    }
}

fn service_run<E: TxnEngine>(
    mk: &(impl Fn(MachineConfig) -> E + Sync),
    mode: ExecMode,
    svc: &ServiceConfig,
) -> ServiceRun<E> {
    let shard = MachineConfig::default().shard_slice(THREADS);
    run_service(
        move |_| mk(shard.clone()),
        |_| Sps::new(512, KeyDist::uniform(512)),
        &cfg(mode),
        svc,
    )
}

fn assert_runs_match<E: TxnEngine>(a: &ServiceRun<E>, b: &ServiceRun<E>, what: &str) {
    assert_eq!(a.result, b.result, "{what}: merged counters diverged");
    assert_eq!(a.service, b.service, "{what}: service counters diverged");
    for (x, y) in a.shards.iter().zip(&b.shards) {
        assert_eq!(x.service, y.service, "{what}: shard {} service", x.worker);
        assert_eq!(x.latency, y.latency, "{what}: shard {} latency", x.worker);
        assert_eq!(x.curve, y.curve, "{what}: shard {} drain curve", x.worker);
        assert_eq!(
            x.fingerprint, y.fingerprint,
            "{what}: shard {} NVRAM fingerprint",
            x.worker
        );
        assert_eq!(
            x.elapsed_cycles, y.elapsed_cycles,
            "{what}: shard {} simulated cycles",
            x.worker
        );
    }
}

/// Threaded == sequential reference == `REPEATS` threaded runs, with a
/// moderately loaded front end (some queueing, group commit on).
fn assert_engine_equivalence<E: TxnEngine>(mk: impl Fn(MachineConfig) -> E + Sync) {
    let svc = ServiceConfig {
        period_cycles: 600,
        ..ServiceConfig::default()
    };
    let reference = service_run(&mk, ExecMode::Sequential, &svc);
    assert!(reference.service.conserves(), "{:?}", reference.service);
    for rep in 0..REPEATS {
        let threaded = service_run(&mk, ExecMode::Threaded, &svc);
        assert_runs_match(&threaded, &reference, &format!("rep {rep}"));
    }
}

#[test]
fn ssp_service_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(|cfg| Ssp::new(cfg, SspConfig::default()));
}

#[test]
fn undo_service_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(UndoLog::new);
}

#[test]
fn redo_service_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(RedoLog::new);
}

#[test]
fn shadow_service_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(ShadowPaging::new);
}

/// Under real overload (hot arrivals, small queue, tight deadline) the
/// front end must shed — and the accounting must still conserve exactly
/// at drain: arrivals == served + shed + expired + in_queue, with
/// in_queue == 0 once drained and shed split exactly into its admission
/// and retry components.
#[test]
fn overload_sheds_and_conserves_exactly() {
    let svc = ServiceConfig {
        period_cycles: 40,
        queue_capacity: 8,
        deadline_cycles: 4_000,
        group: 1,
        ..ServiceConfig::default()
    };
    let run = service_run(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Threaded,
        &svc,
    );
    let s = run.service;
    assert!(s.shed > 0, "an overloaded front end must shed: {s:?}");
    assert!(s.conserves(), "accounting must conserve: {s:?}");
    assert_eq!(s.in_queue, 0, "the run must drain: {s:?}");
    assert_eq!(
        s.shed,
        s.shed_admission + s.shed_retry,
        "shed must split exactly: {s:?}"
    );
    assert_eq!(s.arrivals, 160, "open-loop arrivals are fixed by config");
    // The sequential reference sheds identically.
    let seq = service_run(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Sequential,
        &svc,
    );
    assert_runs_match(&run, &seq, "overload");
}

/// Deadline-aware shedding refuses work it cannot finish in time; the
/// depth-threshold policy caps the queue below its configured threshold.
#[test]
fn admission_policies_bound_the_queue() {
    let svc = ServiceConfig {
        period_cycles: 150,
        queue_capacity: 32,
        deadline_cycles: 20_000,
        admission: AdmissionPolicy::Backpressure { threshold: 16 },
        group: 1,
        ..ServiceConfig::default()
    };
    let run = service_run(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Threaded,
        &svc,
    );
    let s = run.service;
    assert!(s.conserves(), "{s:?}");
    assert!(
        s.queue_peak <= 16,
        "backpressure must cap the queue at its threshold: {s:?}"
    );
    assert!(s.shed > 0, "a capped queue under overload must shed: {s:?}");
}

/// Recovery-under-fire: power cuts land on a periodic schedule while
/// the open-loop generator keeps producing arrivals. Storms must trip,
/// the outage must be visible as a non-zero unavailability window,
/// accounting must conserve — and no committed request may be lost.
/// The whole dance stays bit-identical threaded == sequential.
fn assert_recovery_under_fire<E: TxnEngine>(mk: impl Fn(MachineConfig) -> E + Sync) {
    let svc = ServiceConfig {
        period_cycles: 600,
        storm: Some(StormSchedule::every_cycles(30_000)),
        ..ServiceConfig::default()
    };
    let threaded = service_run(&mk, ExecMode::Threaded, &svc);
    let s = threaded.service;
    assert!(s.storms > 0, "the schedule never tripped: {s:?}");
    assert!(
        s.unavailability_cycles > 0,
        "recovery must cost a visible outage window: {s:?}"
    );
    assert_eq!(s.lost, 0, "zero-loss violated under fire: {s:?}");
    assert!(s.conserves(), "accounting must conserve under fire: {s:?}");
    let sequential = service_run(&mk, ExecMode::Sequential, &svc);
    assert_runs_match(&threaded, &sequential, "under fire");
}

#[test]
fn ssp_recovery_under_fire_loses_nothing() {
    assert_recovery_under_fire(|cfg| Ssp::new(cfg, SspConfig::default()));
}

#[test]
fn undo_recovery_under_fire_loses_nothing() {
    assert_recovery_under_fire(UndoLog::new);
}

#[test]
fn redo_recovery_under_fire_loses_nothing() {
    assert_recovery_under_fire(RedoLog::new);
}

#[test]
fn shadow_recovery_under_fire_loses_nothing() {
    assert_recovery_under_fire(ShadowPaging::new);
}

/// Group commit amortizes the journal: batching 8 requests per engine
/// transaction must flush fewer groups *and* write less journal traffic
/// than one-request-per-transaction at the same arrival rate.
#[test]
fn group_commit_amortizes_journal_traffic() {
    let mk = |group| ServiceConfig {
        period_cycles: 600,
        group,
        ..ServiceConfig::default()
    };
    let single = service_run(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Threaded,
        &mk(1),
    );
    let batched = service_run(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Threaded,
        &mk(8),
    );
    assert!(
        batched.service.groups < single.service.groups,
        "batching must issue fewer group commits: {} vs {}",
        batched.service.groups,
        single.service.groups
    );
    assert!(
        batched.result.logging_writes() < single.result.logging_writes(),
        "group commit must amortize journal flushes: {} vs {}",
        batched.result.logging_writes(),
        single.result.logging_writes()
    );
}
