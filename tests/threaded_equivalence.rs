//! The determinism contract of the threaded driver, locked in for every
//! engine: a threaded run must produce *bit-identical* merged counters,
//! per-shard counters and committed persistent state as (a) the
//! single-host-thread reference schedule (`ExecMode::Sequential`, the
//! legacy round-robin interleaving of the same per-worker work) and
//! (b) itself across repeated runs — the latter catches host-scheduling
//! nondeterminism and any hash-iteration order that leaks into the
//! simulated machine.

use ssp::baselines::{RedoLog, UndoLog};
use ssp::core::engine::Ssp;
use ssp::simulator::config::MachineConfig;
use ssp::txn::engine::TxnEngine;
use ssp::workloads::runner::{run_parallel, ExecMode, ParallelRun, RunConfig};
use ssp::workloads::{BTreeWorkload, KeyDist, Sps};
use ssp::SspConfig;

const THREADS: usize = 4;
const REPEATS: usize = 5;

fn cfg(mode: ExecMode) -> RunConfig {
    RunConfig {
        txns: 240,
        warmup: 40,
        threads: THREADS,
        seed: 0x7EAD_2019,
        mode,
    }
}

/// Runs the given engine factory over a sharded SPS workload.
fn sps_run<E: TxnEngine>(
    mk: &(impl Fn(MachineConfig) -> E + Sync),
    mode: ExecMode,
) -> ParallelRun<E> {
    let shard = MachineConfig::default().shard_slice(THREADS);
    run_parallel(
        move |_| mk(shard.clone()),
        |_| Sps::new(1024, KeyDist::uniform(1024)),
        &cfg(mode),
    )
}

/// The committed persistent state of every shard: crash (drops volatile
/// state) + recover, then fingerprint the NVRAM region.
fn committed_fingerprints<E: TxnEngine>(run: &mut ParallelRun<E>) -> Vec<u64> {
    run.shards
        .iter_mut()
        .map(|s| {
            s.engine.crash_and_recover();
            s.engine.machine().nvram_fingerprint()
        })
        .collect()
}

/// Threaded == sequential reference, and threaded == threaded (5 runs),
/// for one engine factory.
fn assert_engine_equivalence<E: TxnEngine>(mk: impl Fn(MachineConfig) -> E + Sync) {
    let mut reference = sps_run(&mk, ExecMode::Sequential);
    let ref_prints = committed_fingerprints(&mut reference);

    for rep in 0..REPEATS {
        let mut threaded = sps_run(&mk, ExecMode::Threaded);
        assert_eq!(
            threaded.result, reference.result,
            "merged counters diverged from the sequential reference (rep {rep})"
        );
        for (t, r) in threaded.shards.iter().zip(&reference.shards) {
            assert_eq!(
                t.stats, r.stats,
                "shard {} machine counters (rep {rep})",
                t.worker
            );
            assert_eq!(
                t.txn_stats, r.txn_stats,
                "shard {} txn stats (rep {rep})",
                t.worker
            );
            assert_eq!(
                t.elapsed_cycles, r.elapsed_cycles,
                "shard {} simulated cycles (rep {rep})",
                t.worker
            );
        }
        assert_eq!(
            committed_fingerprints(&mut threaded),
            ref_prints,
            "committed persistent state diverged (rep {rep})"
        );
    }
}

#[test]
fn ssp_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(|cfg| Ssp::new(cfg, SspConfig::default()));
}

#[test]
fn undo_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(UndoLog::new);
}

#[test]
fn redo_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(RedoLog::new);
}

/// The same contract on a structured workload (B+-tree): exercises the
/// SSP journal, write-set, consolidation and checkpoint paths, which all
/// carry hash-ordered state internally.
#[test]
fn ssp_btree_threaded_equals_sequential() {
    let shard = MachineConfig::default().shard_slice(2);
    let mk = |mode| {
        run_parallel(
            |_| Ssp::new(shard.clone(), SspConfig::default()),
            |_| BTreeWorkload::new(KeyDist::uniform(512), 256),
            &RunConfig {
                txns: 160,
                warmup: 20,
                threads: 2,
                seed: 0xB7EE,
                mode,
            },
        )
    };
    let mut a = mk(ExecMode::Threaded);
    let mut b = mk(ExecMode::Sequential);
    assert_eq!(a.result, b.result);
    assert_eq!(
        committed_fingerprints(&mut a),
        committed_fingerprints(&mut b)
    );
}

/// Worker shards are genuinely disjoint machines: every shard commits its
/// exact share of transactions and reports nonzero work.
#[test]
fn shards_commit_their_exact_share() {
    let p = sps_run(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Threaded,
    );
    assert_eq!(p.shards.len(), THREADS);
    for s in &p.shards {
        assert_eq!(s.txn_stats.committed, s.txns);
        assert_eq!(s.txns, 60);
        assert!(s.elapsed_cycles > 0);
        assert!(s.stats.nvram_writes_total() > 0);
    }
}

/// A different seed must actually change the measurement (guards against
/// the per-worker seed derivation collapsing streams).
#[test]
fn distinct_seeds_give_distinct_runs() {
    let shard = MachineConfig::default().shard_slice(2);
    let mk = |seed| {
        run_parallel(
            |_| UndoLog::new(shard.clone()),
            |_| Sps::new(1024, KeyDist::paper_zipf(1024)),
            &RunConfig {
                txns: 200,
                warmup: 20,
                threads: 2,
                seed,
                mode: ExecMode::Threaded,
            },
        )
    };
    let a = mk(1);
    let b = mk(2);
    assert_ne!(
        (a.result.elapsed_cycles, a.result.nvram_writes()),
        (b.result.elapsed_cycles, b.result.nvram_writes())
    );
}
