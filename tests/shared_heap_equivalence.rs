//! The determinism contract of the shared-heap driver, with conflicts
//! ON: a threaded run over one versioned heap must produce
//! *bit-identical* merged counters, OCC outcome counters (including
//! abort counts), latency histograms and committed persistent state as
//! (a) the single-host-thread sequential reference and (b) itself
//! across repeated runs — for every engine.
//!
//! The thread count honors `SSP_SHARED_THREADS` (the CI matrix sets
//! 1/2/4/8) and defaults to 4.

use ssp::baselines::{RedoLog, ShadowPaging, UndoLog};
use ssp::core::engine::Ssp;
use ssp::simulator::config::{InterconnectConfig, MachineConfig};
use ssp::simulator::fault::FaultSite;
use ssp::txn::engine::TxnEngine;
use ssp::workloads::runner::{ExecMode, RunConfig};
use ssp::workloads::shared::{run_shared, run_shared_crash_probe, SharedHeapConfig, SharedRun};
use ssp::workloads::ConflictSps;
use ssp::SspConfig;

const REPEATS: usize = 5;
/// High-conflict dial used by the equivalence runs.
const DIAL: f64 = 0.7;

fn threads() -> usize {
    std::env::var("SSP_SHARED_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn cfg(mode: ExecMode, threads: usize) -> RunConfig {
    RunConfig {
        txns: 240,
        warmup: 40,
        threads,
        seed: 0x5EED_2019,
        mode,
    }
}

fn conflict_run<E: TxnEngine>(
    mk: &(impl Fn(MachineConfig) -> E + Sync),
    mode: ExecMode,
    threads: usize,
    dial: f64,
) -> SharedRun<E> {
    let shard = MachineConfig::default().shard_slice(threads.max(2));
    run_shared(
        move |_| mk(shard.clone()),
        move |w| ConflictSps::uniform(256, 256, threads, w, dial),
        &cfg(mode, threads),
        &SharedHeapConfig::default(),
    )
}

/// The committed persistent state of every shard: crash (drops volatile
/// state) + recover, then fingerprint the NVRAM region.
fn committed_fingerprints<E: TxnEngine>(run: &mut SharedRun<E>) -> Vec<u64> {
    run.shards
        .iter_mut()
        .map(|s| {
            s.engine.crash_and_recover();
            s.engine.machine().nvram_fingerprint()
        })
        .collect()
}

/// Threaded == sequential reference, and threaded == threaded
/// (`REPEATS` runs), for one engine factory, with the conflict dial up.
fn assert_engine_equivalence<E: TxnEngine>(mk: impl Fn(MachineConfig) -> E + Sync) {
    let threads = threads();
    let mut reference = conflict_run(&mk, ExecMode::Sequential, threads, DIAL);
    let ref_prints = committed_fingerprints(&mut reference);

    for rep in 0..REPEATS {
        let mut threaded = conflict_run(&mk, ExecMode::Threaded, threads, DIAL);
        assert_eq!(
            threaded.result, reference.result,
            "merged counters diverged from the sequential reference (rep {rep})"
        );
        assert_eq!(
            threaded.shared, reference.shared,
            "OCC outcome counters diverged (rep {rep})"
        );
        for (t, r) in threaded.shards.iter().zip(&reference.shards) {
            assert_eq!(
                t.stats, r.stats,
                "shard {} machine counters (rep {rep})",
                t.worker
            );
            assert_eq!(
                t.txn_stats, r.txn_stats,
                "shard {} txn stats (rep {rep})",
                t.worker
            );
            assert_eq!(
                t.shared, r.shared,
                "shard {} OCC counters (rep {rep})",
                t.worker
            );
            assert_eq!(
                t.latency, r.latency,
                "shard {} latency histograms (rep {rep})",
                t.worker
            );
            assert_eq!(
                t.elapsed_cycles, r.elapsed_cycles,
                "shard {} simulated cycles (rep {rep})",
                t.worker
            );
        }
        assert_eq!(
            committed_fingerprints(&mut threaded),
            ref_prints,
            "committed persistent state diverged (rep {rep})"
        );
    }
}

#[test]
fn ssp_shared_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(|cfg| Ssp::new(cfg, SspConfig::default()));
}

#[test]
fn undo_shared_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(UndoLog::new);
}

#[test]
fn redo_shared_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(RedoLog::new);
}

#[test]
fn shadow_shared_threaded_equals_sequential_and_repeats() {
    assert_engine_equivalence(ShadowPaging::new);
}

/// Every committed transaction is accounted for: committed == requested,
/// validated == committed + aborted, and retries drain every abort.
#[test]
fn occ_accounting_is_conserved() {
    let threads = threads();
    let run = conflict_run(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Threaded,
        threads,
        DIAL,
    );
    let s = &run.shared;
    assert_eq!(run.result.txns, 240);
    assert_eq!(s.committed, run.result.txns);
    assert_eq!(s.validated, s.committed + s.aborted);
    assert_eq!(s.retries, s.aborted, "every abort must be retried");
    assert_eq!(s.conflicts + s.cascades, s.aborted);
    assert_eq!(run.result.txn_stats.committed, s.committed);
    assert_eq!(run.result.txn_stats.aborted, s.aborted);
}

/// Conflict dial at 0 = perfectly partitioned working sets: zero aborts
/// at any worker count, by construction.
#[test]
fn dial_zero_never_aborts() {
    let threads = threads();
    let run = conflict_run(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Threaded,
        threads,
        0.0,
    );
    assert_eq!(run.shared.aborted, 0, "partitioned run must not abort");
    assert_eq!(run.shared.committed, 240);
}

/// One client has no one to conflict with: its own epoch chains always
/// validate, even at full dial.
#[test]
fn single_client_never_aborts() {
    let run = conflict_run(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Threaded,
        1,
        1.0,
    );
    assert_eq!(run.shared.aborted, 0, "a lone client must not abort");
    assert_eq!(run.shared.committed, 240);
}

/// The driver rides the interconnect's epoch machinery: with the shared
/// memory hierarchy enabled, threaded == sequential still holds
/// bit-for-bit (conflict validation and bank/LLC arbitration share one
/// rendezvous).
#[test]
fn shared_heap_with_interconnect_stays_deterministic() {
    let threads = threads().max(2);
    let mut shard = MachineConfig::default().shard_slice(threads);
    shard.interconnect = InterconnectConfig::shared_hierarchy();
    let mk = |mode| {
        run_shared(
            |_| Ssp::new(shard.clone(), SspConfig::default()),
            |w| ConflictSps::uniform(256, 256, threads, w, DIAL),
            &cfg(mode, threads),
            &SharedHeapConfig::default(),
        )
    };
    let mut a = mk(ExecMode::Threaded);
    let mut b = mk(ExecMode::Sequential);
    assert_eq!(a.result, b.result);
    assert_eq!(a.shared, b.shared);
    assert_eq!(
        committed_fingerprints(&mut a),
        committed_fingerprints(&mut b)
    );
}

/// Contention must actually happen at a high dial with several clients
/// (guards against the validator silently passing everything).
#[test]
fn high_dial_produces_aborts() {
    let run = conflict_run(
        &|cfg| Ssp::new(cfg, SspConfig::default()),
        ExecMode::Threaded,
        4,
        0.9,
    );
    assert!(
        run.shared.aborted > 0,
        "4 clients at dial 0.9 must conflict; stats: {:?}",
        run.shared
    );
}

/// A power cut inside a publication replay (commit *data* flush) must
/// roll the cut transaction back or keep it whole — never lose a
/// committed one. The zero-loss oracle contract extends to the
/// shared-heap mode.
fn crash_probe(site: FaultSite) {
    let threads = 3;
    let shard = MachineConfig::default().shard_slice(threads);
    let report = run_shared_crash_probe(
        |_| Ssp::new(shard.clone(), SspConfig::default()),
        |w| ConflictSps::uniform(256, 256, threads, w, DIAL),
        &cfg(ExecMode::Sequential, threads),
        &SharedHeapConfig::default(),
        1,
        site,
        7,
    );
    assert!(report.storms >= 1, "the cut never tripped: {report:?}");
    assert_eq!(report.lost, 0, "zero-loss violated: {report:?}");
    assert_eq!(
        report.torn_dropped + report.torn_kept,
        report.storms,
        "every storm resolves to dropped-or-kept: {report:?}"
    );
    assert_eq!(report.committed, 240 + 40, "probe must drain all work");
}

#[test]
fn commit_data_cut_during_publication_loses_nothing() {
    crash_probe(FaultSite::CommitData);
}

#[test]
fn commit_mark_cut_during_publication_loses_nothing() {
    crash_probe(FaultSite::CommitMark);
}

/// The crash probe in [`ExecMode::Threaded`]: across a 2/4-thread
/// matrix, the threaded probe's report must be bit-identical to the
/// sequential reference, and the zero-loss contract must hold in both
/// modes.
fn threaded_crash_probe_matrix(site: FaultSite) {
    for threads in [2usize, 4] {
        let shard = MachineConfig::default().shard_slice(threads);
        let probe = |mode| {
            run_shared_crash_probe(
                |_| Ssp::new(shard.clone(), SspConfig::default()),
                |w| ConflictSps::uniform(256, 256, threads, w, DIAL),
                &cfg(mode, threads),
                &SharedHeapConfig::default(),
                threads - 1,
                site,
                7,
            )
        };
        let sequential = probe(ExecMode::Sequential);
        let threaded = probe(ExecMode::Threaded);
        let repeat = probe(ExecMode::Threaded);
        assert_eq!(
            threaded, sequential,
            "x{threads} {site:?}: threaded probe diverged from the sequential reference"
        );
        assert_eq!(
            threaded, repeat,
            "x{threads} {site:?}: threaded probe drifted across repeats"
        );
        assert!(
            threaded.storms >= 1,
            "x{threads} {site:?}: the cut never tripped: {threaded:?}"
        );
        assert_eq!(threaded.lost, 0, "x{threads} {site:?}: {threaded:?}");
        assert_eq!(
            threaded.torn_dropped + threaded.torn_kept,
            threaded.storms,
            "x{threads} {site:?}: {threaded:?}"
        );
        assert_eq!(
            threaded.committed,
            240 + 40,
            "x{threads} {site:?}: probe must drain all work"
        );
    }
}

#[test]
fn threaded_commit_data_probe_matches_sequential() {
    threaded_crash_probe_matrix(FaultSite::CommitData);
}

#[test]
fn threaded_commit_mark_probe_matches_sequential() {
    threaded_crash_probe_matrix(FaultSite::CommitMark);
}
