//! Workload-level integration: every benchmark data structure runs on
//! every engine, with crashes injected between transactions, and the
//! structure invariants hold afterwards.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssp::baselines::{RedoLog, UndoLog};
use ssp::core::engine::Ssp;
use ssp::simulator::cache::CoreId;
use ssp::simulator::config::MachineConfig;
use ssp::txn::engine::TxnEngine;
use ssp::txn::heap::PersistentHeap;
use ssp::workloads::{BTree, HashTable, RbTree};
use ssp::SspConfig;
use std::collections::BTreeMap;

const C0: CoreId = CoreId::new(0);

/// Random tree ops with crashes; a reference model tracks only committed
/// operations (a crash between transactions loses nothing).
fn rbtree_torture<E: TxnEngine>(engine: &mut E, seed: u64) {
    engine.begin(C0);
    let heap = PersistentHeap::create(engine, C0);
    let tree = RbTree::create(engine, C0, heap);
    engine.commit(C0);

    let mut model = BTreeMap::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..250 {
        let key = rng.gen_range(0..120u64);
        engine.begin(C0);
        if model.remove(&key).is_some() {
            assert!(tree.remove(engine, C0, key));
        } else {
            tree.insert(engine, C0, key, key + 5);
            model.insert(key, key + 5);
        }
        engine.commit(C0);
        if i % 40 == 39 {
            engine.crash_and_recover();
            tree.check_invariants(engine, C0);
        }
    }
    assert_eq!(
        tree.keys(engine, C0),
        model.keys().copied().collect::<Vec<_>>()
    );
    for (&k, &v) in &model {
        assert_eq!(tree.get(engine, C0, k), Some(v));
    }
}

#[test]
fn rbtree_on_ssp_with_crashes() {
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    rbtree_torture(&mut e, 11);
}

#[test]
fn rbtree_on_undo_with_crashes() {
    let mut e = UndoLog::new(MachineConfig::default());
    rbtree_torture(&mut e, 12);
}

#[test]
fn rbtree_on_redo_with_crashes() {
    let mut e = RedoLog::new(MachineConfig::default());
    rbtree_torture(&mut e, 13);
}

fn btree_torture<E: TxnEngine>(engine: &mut E, seed: u64) {
    engine.begin(C0);
    let heap = PersistentHeap::create(engine, C0);
    let tree = BTree::create(engine, C0, heap);
    engine.commit(C0);

    let mut model = BTreeMap::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..300 {
        let key = rng.gen_range(0..150u64);
        engine.begin(C0);
        if model.remove(&key).is_some() {
            assert!(tree.remove(engine, C0, key));
        } else {
            tree.insert(engine, C0, key, key * 3);
            model.insert(key, key * 3);
        }
        engine.commit(C0);
        if i % 60 == 59 {
            engine.crash_and_recover();
        }
    }
    assert_eq!(
        tree.keys(engine, C0),
        model.keys().copied().collect::<Vec<_>>()
    );
}

#[test]
fn btree_on_ssp_with_crashes() {
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    btree_torture(&mut e, 21);
}

#[test]
fn btree_on_undo_with_crashes() {
    let mut e = UndoLog::new(MachineConfig::default());
    btree_torture(&mut e, 22);
}

#[test]
fn btree_on_redo_with_crashes() {
    let mut e = RedoLog::new(MachineConfig::default());
    btree_torture(&mut e, 23);
}

fn hash_torture<E: TxnEngine>(engine: &mut E, seed: u64) {
    engine.begin(C0);
    let heap = PersistentHeap::create(engine, C0);
    let table = HashTable::create(engine, C0, heap, 32);
    engine.commit(C0);

    let mut model = std::collections::HashMap::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..300 {
        let key = rng.gen_range(0..100u64);
        engine.begin(C0);
        if model.remove(&key).is_some() {
            assert!(table.remove(engine, C0, key));
        } else {
            table.insert(engine, C0, key, key ^ 0x77);
            model.insert(key, key ^ 0x77);
        }
        engine.commit(C0);
        if i % 50 == 49 {
            engine.crash_and_recover();
        }
    }
    for k in 0..100u64 {
        assert_eq!(table.get(engine, C0, k), model.get(&k).copied(), "key {k}");
    }
}

#[test]
fn hash_on_ssp_with_crashes() {
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    hash_torture(&mut e, 31);
}

#[test]
fn hash_on_undo_with_crashes() {
    let mut e = UndoLog::new(MachineConfig::default());
    hash_torture(&mut e, 32);
}

#[test]
fn hash_on_redo_with_crashes() {
    let mut e = RedoLog::new(MachineConfig::default());
    hash_torture(&mut e, 33);
}

// Snapshot baselines for the stream-sensitive counters below. These pin
// the *exact* values produced by the in-repo `rand` shim's seeded streams
// (the shim samples ranges by modulo; real rand 0.8 uses rejection
// sampling, so every seeded stream shifts when the shim is swapped for
// the real crate).
//
// How to re-baseline after swapping the rand shim (or intentionally
// changing an engine's write path): run
// `cargo test --test workload_integration rbtree_on_ssp_with_small_tlb`
// and copy the reported left-hand values into these constants — that one
// edit is the whole re-baseline, keeping the swap a one-file diff.
const SNAPSHOT_SEED: u64 = 41;
const EXPECTED_FALLBACKS: u64 = 3;
const EXPECTED_CHECKPOINTS: u64 = 24;
// Zero is genuine here: under constant fall-back pressure, pages are
// pinned when they leave the TLB, so consolidation stays quiet.
const EXPECTED_CONSOLIDATED_PAGES: u64 = 0;

#[test]
fn rbtree_on_ssp_with_small_tlb_and_fallback_pressure() {
    // All the hard paths at once: tiny TLB (constant consolidation), tiny
    // write-set buffer (fall-back), aggressive checkpoints.
    let cfg = MachineConfig {
        dtlb_entries: 4,
        ..MachineConfig::default()
    };
    let ssp_cfg = SspConfig {
        write_set_capacity: 2,
        checkpoint_threshold_bytes: 512,
        ..SspConfig::default()
    };
    let mut e = Ssp::new(cfg, ssp_cfg);
    rbtree_torture(&mut e, SNAPSHOT_SEED);
    // Exact-value snapshots (not `> 0`): these counters are the canary
    // for unintended changes to the seeded streams or the SSP write
    // paths — see the constants above for how to re-baseline.
    assert_eq!(e.txn_stats().fallbacks, EXPECTED_FALLBACKS, "fallbacks");
    assert_eq!(e.checkpoints(), EXPECTED_CHECKPOINTS, "checkpoints");
    assert_eq!(
        e.consolidation_stats().pages,
        EXPECTED_CONSOLIDATED_PAGES,
        "consolidated pages"
    );
}
