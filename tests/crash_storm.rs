//! The crash-storm harness end to end: scheduled power cuts under real
//! workload traffic, oracle-verified recovery, and the determinism
//! contract — bit-identical reports across threaded, sequential and
//! repeated runs for a fixed seed + crash schedule.

use ssp::baselines::{RedoLog, ShadowPaging, UndoLog};
use ssp::core::engine::Ssp;
use ssp::simulator::config::{InterconnectConfig, MachineConfig};
use ssp::simulator::fault::FaultSite;
use ssp::workloads::runner::{ExecMode, RunConfig};
use ssp::workloads::storm::{run_epoch_storm, run_storm, StormPoint, StormRun, StormSchedule};
use ssp::workloads::{KeyDist, Sps};
use ssp::SspConfig;

const THREADS: usize = 2;

fn cfg(mode: ExecMode) -> RunConfig {
    RunConfig {
        txns: 160,
        warmup: 0,
        threads: THREADS,
        seed: 0x5702_2019,
        mode,
    }
}

fn storm_ssp(mode: ExecMode, schedule: &StormSchedule) -> StormRun {
    run_storm(
        |_| {
            Ssp::new(
                MachineConfig::default().shard_slice(THREADS),
                SspConfig::default(),
            )
        },
        |_| Sps::new(256, KeyDist::uniform(256)),
        &cfg(mode),
        schedule,
    )
}

/// Storm the same engine many times in a row — including cutting every
/// first recovery short — and require zero data loss throughout.
#[test]
fn repeated_storms_never_lose_committed_data() {
    let schedule = StormSchedule {
        points: vec![StormPoint::AfterCycles(6_000)],
        crash_during_recovery: true,
        rearm: true,
    };
    let run = storm_ssp(ExecMode::Threaded, &schedule);
    let t = run.totals();
    assert!(t.storms >= 4, "want a real storm series, got {t:?}");
    assert_eq!(t.torn_recoveries, t.storms, "every first recovery was cut");
    assert_eq!(t.lost_txns, 0, "{t:?}");
}

/// The determinism contract: threaded == sequential == every repeat,
/// down to each shard's counters and NVRAM fingerprint.
#[test]
fn storm_reports_identical_across_modes_and_repeats() {
    let schedule = StormSchedule {
        points: vec![
            StormPoint::AfterCycles(5_000),
            StormPoint::AtSite {
                site: FaultSite::CommitData,
                hits: 7,
            },
            StormPoint::AtSite {
                site: FaultSite::CommitMark,
                hits: 11,
            },
        ],
        crash_during_recovery: true,
        rearm: true,
    };
    let reference = storm_ssp(ExecMode::Threaded, &schedule);
    assert!(reference.totals().storms > 0);
    for _ in 0..5 {
        let repeat = storm_ssp(ExecMode::Threaded, &schedule);
        assert_eq!(reference.shards, repeat.shards, "threaded repeat drifted");
    }
    for _ in 0..5 {
        let seq = storm_ssp(ExecMode::Sequential, &schedule);
        assert_eq!(reference.shards, seq.shards, "sequential run drifted");
    }
}

/// Every engine survives the same periodic storm with zero loss.
#[test]
fn all_engines_survive_a_storm_series() {
    let schedule = StormSchedule::every_cycles(8_000);
    let c = cfg(ExecMode::Threaded);
    let mk_workload = |_| Sps::new(256, KeyDist::uniform(256));
    let mcfg = || MachineConfig::default().shard_slice(THREADS);

    let runs: Vec<(&str, StormRun)> = vec![
        (
            "SSP",
            run_storm(
                |_| Ssp::new(mcfg(), SspConfig::default()),
                mk_workload,
                &c,
                &schedule,
            ),
        ),
        (
            "UNDO",
            run_storm(|_| UndoLog::new(mcfg()), mk_workload, &c, &schedule),
        ),
        (
            "REDO",
            run_storm(|_| RedoLog::new(mcfg()), mk_workload, &c, &schedule),
        ),
        (
            "SHADOW",
            run_storm(|_| ShadowPaging::new(mcfg()), mk_workload, &c, &schedule),
        ),
    ];
    for (name, run) in runs {
        let t = run.totals();
        assert!(t.storms > 0, "{name}: no storm tripped ({t:?})");
        assert_eq!(t.lost_txns, 0, "{name} lost committed data: {t:?}");
    }
}

/// SSP consolidation cut mid-drain: force constant consolidation with a
/// tiny TLB and cut inside the drain.
#[test]
fn ssp_survives_a_cut_during_consolidation() {
    let schedule = StormSchedule {
        points: vec![StormPoint::AtSite {
            site: FaultSite::Consolidation,
            hits: 3,
        }],
        crash_during_recovery: false,
        rearm: true,
    };
    let run = run_storm(
        |_| {
            let mcfg = MachineConfig {
                dtlb_entries: 4,
                ..MachineConfig::default().shard_slice(THREADS)
            };
            Ssp::new(mcfg, SspConfig::default())
        },
        |_| Sps::new(4096, KeyDist::uniform(4096)),
        &cfg(ExecMode::Threaded),
        &schedule,
    );
    let t = run.totals();
    assert!(t.storms > 0, "consolidation cut never tripped: {t:?}");
    assert_eq!(t.lost_txns, 0, "{t:?}");
}

/// Interconnect epoch storms: the whole machine loses power at the same
/// epoch boundary on every shard, recovers, and the run completes with
/// zero loss — identically in both execution modes.
#[test]
fn epoch_boundary_storm_is_machine_wide_and_deterministic() {
    let schedule = StormSchedule {
        points: vec![StormPoint::AtSite {
            site: FaultSite::EpochBoundary,
            hits: 2,
        }],
        crash_during_recovery: false,
        rearm: true,
    };
    let mk_engine = |_| {
        let mut mcfg = MachineConfig::default().shard_slice(THREADS);
        mcfg.interconnect = InterconnectConfig::shared();
        mcfg.interconnect.epoch_cycles = 10_000;
        Ssp::new(mcfg, SspConfig::default())
    };
    let mk_workload = |_| Sps::new(256, KeyDist::uniform(256));
    let threaded = run_epoch_storm(mk_engine, mk_workload, &cfg(ExecMode::Threaded), &schedule);
    let t = threaded.totals();
    assert!(t.storms > 0, "no epoch cut tripped: {t:?}");
    assert_eq!(
        t.storms % THREADS as u64,
        0,
        "a cut must take down every shard together: {t:?}"
    );
    assert_eq!(
        t.torn_txns + t.kept_torn_txns,
        0,
        "boundary cuts land between transactions"
    );
    assert_eq!(t.lost_txns, 0, "{t:?}");

    let sequential = run_epoch_storm(
        mk_engine,
        mk_workload,
        &cfg(ExecMode::Sequential),
        &schedule,
    );
    assert_eq!(
        threaded.shards, sequential.shards,
        "epoch storm modes diverged"
    );
}

/// After any storm series, the recovered engines keep doing useful work:
/// fingerprints are nonzero and distinct across shards (each shard holds
/// its own data), and recovery did real NVRAM traffic.
#[test]
fn storm_reports_carry_recovery_metrics() {
    let schedule = StormSchedule::every_cycles(6_000);
    let run = storm_ssp(ExecMode::Sequential, &schedule);
    for shard in &run.shards {
        assert!(shard.storms > 0, "{shard:?}");
        assert!(shard.fingerprint != 0, "{shard:?}");
        assert!(
            shard.recovery_nvram_reads + shard.recovery_nvram_writes > 0,
            "{shard:?}"
        );
        assert!(shard.recovery_cycles_est > 0, "{shard:?}");
        assert!(shard.elapsed_cycles > 0, "{shard:?}");
    }
}
