//! The observability layer must not perturb the determinism contract —
//! and must itself be deterministic. With the event ring fully enabled,
//! a threaded run must be bit-identical to the sequential reference and
//! to itself across repeats, for every engine: merged counters, latency
//! histograms, per-shard ring contents, and the committed NVRAM state.
//!
//! The ring stamps events with the *virtual* clock, so nothing about the
//! host schedule can leak into it; this test is the net under that claim.

use ssp::simulator::config::{InterconnectConfig, MachineConfig};
use ssp::simulator::obs::{LatencyHistogram, ObsConfig, ObsEvent};
use ssp::txn::engine::TxnEngine;
use ssp::workloads::dist::KeyDist;
use ssp::workloads::runner::{run_parallel, ExecMode, ParallelRun, RunConfig};
use ssp::workloads::sps::Sps;
use ssp::{RedoLog, ShadowPaging, Ssp, SspConfig, UndoLog};

const THREADS: usize = 4;
const REPEATS: usize = 5;

fn run_cfg(mode: ExecMode) -> RunConfig {
    RunConfig {
        txns: 240,
        warmup: 40,
        threads: THREADS,
        seed: 0x0B5E_2019,
        mode,
    }
}

/// Shard config for worker `w` with the ring fully on. `shard_slice_for`
/// stamps `obs.worker`; replacing the whole `obs` afterwards means the
/// stamp must be re-applied — a subtle trap this helper centralizes.
fn traced_shard(base: &MachineConfig, w: usize) -> MachineConfig {
    let mut mc = base.shard_slice_for(THREADS, w);
    mc.obs = ObsConfig::tracing();
    mc.obs.worker = w as u32;
    mc
}

/// Everything the contract covers, harvested from one run: the merged
/// result (counters + latency histograms), per-shard counters, per-shard
/// ring contents (events *and* the total-recorded overwrite counter), and
/// the committed persistent state. Ring harvest happens before the
/// crash/recover fingerprinting so the snapshot is "at end of run".
#[derive(Debug, PartialEq)]
struct Observed {
    result: ssp::workloads::runner::RunResult,
    shard_cycles: Vec<u64>,
    rings: Vec<(u64, Vec<ObsEvent>)>,
    fingerprints: Vec<u64>,
}

fn observe<E: TxnEngine>(mut run: ParallelRun<E>) -> Observed {
    let rings = run
        .shards
        .iter()
        .map(|s| {
            let ring = s.engine.machine().obs();
            assert!(ring.enabled(), "ring must be on in this test");
            assert!(!ring.is_empty(), "an enabled ring must capture events");
            (ring.recorded(), ring.iter().copied().collect())
        })
        .collect();
    let shard_cycles = run.shards.iter().map(|s| s.elapsed_cycles).collect();
    let fingerprints = run
        .shards
        .iter_mut()
        .map(|s| {
            s.engine.crash_and_recover();
            s.engine.machine().nvram_fingerprint()
        })
        .collect();
    Observed {
        result: run.result,
        shard_cycles,
        rings,
        fingerprints,
    }
}

fn traced_run<E: TxnEngine>(
    mk: &(impl Fn(MachineConfig) -> E + Sync),
    base: &MachineConfig,
    mode: ExecMode,
) -> Observed {
    observe(run_parallel(
        |w| mk(traced_shard(base, w)),
        |_| Sps::new(1024, KeyDist::uniform(1024)),
        &run_cfg(mode),
    ))
}

/// Threaded == sequential == 5 threaded repeats, with tracing fully on.
fn assert_traced_equivalence<E: TxnEngine>(
    name: &str,
    base: &MachineConfig,
    mk: impl Fn(MachineConfig) -> E + Sync,
) {
    let reference = traced_run(&mk, base, ExecMode::Sequential);
    assert!(
        reference.result.latency.txn.count > 0,
        "{name}: latency histograms must cover the measured phase"
    );
    for rep in 0..REPEATS {
        let threaded = traced_run(&mk, base, ExecMode::Threaded);
        assert_eq!(
            threaded, reference,
            "{name}: traced threaded run diverged from the sequential \
             reference (rep {rep})"
        );
    }
}

#[test]
fn ssp_traced_threaded_equals_sequential_and_repeats() {
    let base = MachineConfig::default();
    assert_traced_equivalence("SSP", &base, |cfg| Ssp::new(cfg, SspConfig::default()));
}

#[test]
fn undo_traced_threaded_equals_sequential_and_repeats() {
    let base = MachineConfig::default();
    assert_traced_equivalence("UNDO-LOG", &base, UndoLog::new);
}

#[test]
fn redo_traced_threaded_equals_sequential_and_repeats() {
    let base = MachineConfig::default();
    assert_traced_equivalence("REDO-LOG", &base, RedoLog::new);
}

#[test]
fn shadow_traced_threaded_equals_sequential_and_repeats() {
    let base = MachineConfig::default();
    assert_traced_equivalence("SHADOW", &base, ShadowPaging::new);
}

/// The same contract under the shared memory hierarchy: epoch merges
/// record interconnect events (grants, deferrals, LLC shortfalls) into
/// the rings from the *leader's* merge pass, which is the most likely
/// place for host-schedule order to leak in.
#[test]
fn ssp_traced_with_interconnect_equals_sequential_and_repeats() {
    let base = MachineConfig {
        interconnect: InterconnectConfig::shared_hierarchy(),
        ..MachineConfig::default()
    };
    assert_traced_equivalence("SSP+interconnect", &base, |cfg| {
        Ssp::new(cfg, SspConfig::default())
    });
}

/// Tracing on vs. off must not change a single simulated counter or the
/// committed state — observation is free in virtual time.
#[test]
fn tracing_does_not_perturb_the_simulation() {
    let mk_plain = |w: usize| {
        Ssp::new(
            MachineConfig::default().shard_slice_for(THREADS, w),
            SspConfig::default(),
        )
    };
    let mk_traced = |w: usize| {
        Ssp::new(
            traced_shard(&MachineConfig::default(), w),
            SspConfig::default(),
        )
    };
    let wl = |_w: usize| Sps::new(1024, KeyDist::uniform(1024));
    let cfg = run_cfg(ExecMode::Threaded);
    let mut plain = run_parallel(mk_plain, wl, &cfg);
    let mut traced = run_parallel(mk_traced, wl, &cfg);
    assert_eq!(plain.result, traced.result);
    for (p, t) in plain.shards.iter_mut().zip(traced.shards.iter_mut()) {
        assert_eq!(p.stats, t.stats, "shard {} counters", p.worker);
        assert!(
            p.engine.machine().obs().is_empty(),
            "plain ring stays empty"
        );
        p.engine.crash_and_recover();
        t.engine.crash_and_recover();
        assert_eq!(
            p.engine.machine().nvram_fingerprint(),
            t.engine.machine().nvram_fingerprint(),
            "shard {} committed state",
            p.worker
        );
    }
}

/// Histogram merge is associative and commutative, and matches recording
/// the union directly — the property the worker-index-order merge in
/// `run_parallel` (and any future tree-shaped merge) relies on.
#[test]
fn histogram_merge_is_associative_and_commutative() {
    // Three deterministic pseudo-random streams (xorshift; no external
    // RNG needed) with very different magnitudes per stream.
    let stream = |seed: u64, scale: u64| {
        let mut x = seed;
        (0..500u64)
            .map(move |_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % scale
            })
            .collect::<Vec<u64>>()
    };
    let streams = [
        stream(0x1, 1 << 8),
        stream(0x2, 1 << 20),
        stream(0x3, 1 << 44),
    ];
    let hist_of = |vals: &[u64]| {
        let mut h = LatencyHistogram::default();
        for &v in vals {
            h.record(v);
        }
        h
    };
    let [a, b, c] = [
        hist_of(&streams[0]),
        hist_of(&streams[1]),
        hist_of(&streams[2]),
    ];

    // (a ∪ b) ∪ c == a ∪ (b ∪ c)
    let mut ab_c = a.clone();
    ab_c.merge(&b);
    ab_c.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);
    assert_eq!(ab_c, a_bc, "merge must be associative");

    // a ∪ b == b ∪ a
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba, "merge must be commutative");

    // Union of merges == histogram of the concatenated stream.
    let all: Vec<u64> = streams.iter().flatten().copied().collect();
    assert_eq!(ab_c, hist_of(&all), "merge must equal direct recording");

    // Percentiles stay within the recorded range and are monotone.
    assert!(ab_c.percentile(50) <= ab_c.percentile(95));
    assert!(ab_c.percentile(95) <= ab_c.percentile(99));
    assert!(ab_c.percentile(99) <= ab_c.max);
    assert_eq!(ab_c.count, 1500);
}
