//! Allocation-regression net for the simulator/engine hot path.
//!
//! The PR-5 optimization pass made the warm steady state of every engine
//! allocation-free: line spans and sub-page groups iterate without
//! collecting, commit/abort sorting reuses engine-owned scratch vectors,
//! per-transaction tracking state lives in per-core buffers that clear
//! but keep capacity, and the metadata journal drains its append buffer
//! in place. This test pins that property with a counting global
//! allocator so a stray `collect()` on the hot path fails CI instead of
//! silently costing throughput.
//!
//! The file intentionally holds a single `#[test]`: the counter is
//! process-global, and a concurrently running test would perturb it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ssp::simulator::cache::CoreId;
use ssp::simulator::config::MachineConfig;
use ssp::simulator::obs::ObsConfig;
use ssp::txn::engine::TxnEngine;
use ssp::workloads::dist::KeyDist;
use ssp::workloads::runner::Workload;
use ssp::workloads::sps::Sps;
use ssp::{RedoLog, ShadowPaging, Ssp, SspConfig, UndoLog};

/// Counts every allocation and reallocation; frees are uncounted (the
/// steady-state claim is about acquiring memory, and a free implies an
/// earlier counted acquisition).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const C0: CoreId = CoreId::new(0);
const WARMUP_TXNS: u64 = 400;
const MEASURED_TXNS: u64 = 256;

/// Allocations tolerated across the whole measured phase (not per
/// transaction): a handful of one-off capacity growths that did not
/// stabilise during warm-up are acceptable; anything scaling with the
/// transaction count is a regression. 256 transactions at even one
/// allocation each would blow this bound 30× over.
const ALLOWED_ALLOCS: u64 = 8;

/// Runs `txns` warm transactions and returns the allocations the
/// measured phase performed.
fn measured_allocs(engine: &mut dyn TxnEngine, workload: &mut Sps, rng: &mut SmallRng) -> u64 {
    for _ in 0..WARMUP_TXNS {
        engine.begin(C0);
        workload.run_txn(engine, C0, rng);
        engine.commit(C0);
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..MEASURED_TXNS {
        engine.begin(C0);
        workload.run_txn(engine, C0, rng);
        engine.commit(C0);
    }
    ALLOCS.load(Ordering::SeqCst) - before
}

fn engines_with(cfg: fn() -> MachineConfig) -> [(&'static str, Box<dyn TxnEngine>); 4] {
    [
        ("SSP", Box::new(Ssp::new(cfg(), SspConfig::default()))),
        ("UNDO-LOG", Box::new(UndoLog::new(cfg()))),
        ("REDO-LOG", Box::new(RedoLog::new(cfg()))),
        ("SHADOW", Box::new(ShadowPaging::new(cfg()))),
    ]
}

fn assert_warm_budget(label: &str, engines: [(&'static str, Box<dyn TxnEngine>); 4]) {
    for (name, mut engine) in engines {
        let mut workload = Sps::new(1024, KeyDist::uniform(1024));
        workload.setup(engine.as_mut(), C0);
        let mut rng = SmallRng::seed_from_u64(0x5eed);
        let allocs = measured_allocs(engine.as_mut(), &mut workload, &mut rng);
        assert!(
            allocs <= ALLOWED_ALLOCS,
            "{name} ({label}): {allocs} heap allocations across {MEASURED_TXNS} warm \
             transactions (allowed {ALLOWED_ALLOCS} total) — something on the hot path \
             allocates again"
        );
    }
}

#[test]
fn warm_transaction_loop_is_allocation_free_for_every_engine() {
    // Tracing off (the default): the observability layer must not add a
    // single allocation — the ring holds no storage and every record call
    // is a branch on a cold bool.
    assert_warm_budget("tracing off", engines_with(MachineConfig::default));

    // Tracing fully on: the event ring is pre-sized at machine
    // construction and overwritten in place, so the warm loop stays
    // within the same budget — zero allocations per transaction.
    fn traced() -> MachineConfig {
        MachineConfig {
            obs: ObsConfig::tracing(),
            ..MachineConfig::default()
        }
    }
    assert_warm_budget("tracing on", engines_with(traced));
}
