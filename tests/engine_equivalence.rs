//! Engine equivalence: the four engines implement the same transactional
//! semantics, so an identical operation trace must leave identical data —
//! including after crashes at identical points.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssp::baselines::{RedoLog, ShadowPaging, UndoLog};
use ssp::core::engine::Ssp;
use ssp::simulator::addr::VirtAddr;
use ssp::simulator::cache::CoreId;
use ssp::simulator::config::MachineConfig;
use ssp::simulator::fault::{CrashPoint, FaultSite};
use ssp::txn::engine::TxnEngine;
use ssp::SspConfig;

const C0: CoreId = CoreId::new(0);

#[derive(Debug, Clone)]
enum Op {
    Begin,
    Store {
        page: usize,
        offset: u64,
        value: u64,
    },
    Commit,
    Abort,
    Crash,
}

fn random_trace(seed: u64, rounds: usize) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    for _ in 0..rounds {
        ops.push(Op::Begin);
        for _ in 0..rng.gen_range(1..6) {
            ops.push(Op::Store {
                page: rng.gen_range(0..4),
                offset: rng.gen_range(0..512u64) * 8,
                value: rng.gen(),
            });
        }
        match rng.gen_range(0..10) {
            0 => ops.push(Op::Abort),
            1 => ops.push(Op::Crash),
            _ => ops.push(Op::Commit),
        }
    }
    ops
}

/// Applies a trace and returns a digest of the final persistent state.
fn apply<E: TxnEngine>(engine: &mut E, ops: &[Op]) -> Vec<u64> {
    let pages: Vec<VirtAddr> = (0..4).map(|_| engine.map_new_page(C0).base()).collect();
    for op in ops {
        match *op {
            Op::Begin => engine.begin(C0),
            Op::Store {
                page,
                offset,
                value,
            } => engine.store(C0, pages[page].add(offset), &value.to_le_bytes()),
            Op::Commit => engine.commit(C0),
            Op::Abort => engine.abort(C0),
            Op::Crash => engine.crash_and_recover(),
        }
    }
    // Quiesce any open transaction so reads see committed state only.
    if engine.in_txn(C0) {
        engine.abort(C0);
    }
    let mut digest = Vec::new();
    for &p in &pages {
        for slot in 0..512u64 {
            let mut buf = [0u8; 8];
            engine.load(C0, p.add(slot * 8), &mut buf);
            digest.push(u64::from_le_bytes(buf));
        }
    }
    digest
}

fn arm_point<E: TxnEngine>(engine: &mut E, schedule: &[(FaultSite, u32)], i: usize) {
    if let Some(&(site, hits)) = schedule.get(i) {
        engine
            .machine_mut()
            .arm_crash(CrashPoint::AtSite { site, hits });
    }
}

/// Applies a trace while an identical site-based crash schedule is armed.
///
/// Each schedule entry cuts power at the k-th hit of a commit-path fault
/// site; on a trip the engine is crashed and recovered and the next entry
/// is armed. Because every engine places `CommitData` before its durable
/// commit mark and `CommitMark` after it, all four engines must recover
/// to the identical state at every cut.
fn apply_with_cut_schedule<E: TxnEngine>(
    engine: &mut E,
    ops: &[Op],
    schedule: &[(FaultSite, u32)],
) -> Vec<u64> {
    let pages: Vec<VirtAddr> = (0..4).map(|_| engine.map_new_page(C0).base()).collect();
    let mut next = 0usize;
    arm_point(engine, schedule, next);
    for op in ops {
        match *op {
            Op::Begin => engine.begin(C0),
            Op::Store {
                page,
                offset,
                value,
            } => engine.store(C0, pages[page].add(offset), &value.to_le_bytes()),
            Op::Commit => engine.commit(C0),
            Op::Abort => engine.abort(C0),
            Op::Crash => {
                engine.crash_and_recover();
                // `crash()` clears the armed point; keep the storm alive.
                arm_point(engine, schedule, next);
            }
        }
        if engine.machine().power_lost() {
            engine.crash();
            engine.recover();
            next += 1;
            arm_point(engine, schedule, next);
        }
    }
    if engine.in_txn(C0) {
        engine.abort(C0);
    }
    let mut digest = Vec::new();
    for &p in &pages {
        for slot in 0..512u64 {
            let mut buf = [0u8; 8];
            engine.load(C0, p.add(slot * 8), &mut buf);
            digest.push(u64::from_le_bytes(buf));
        }
    }
    digest
}

fn check_equivalence(seed: u64) {
    let ops = random_trace(seed, 25);
    let cfg = MachineConfig::default();

    let mut ssp = Ssp::new(cfg.clone(), SspConfig::default());
    let d_ssp = apply(&mut ssp, &ops);

    let mut undo = UndoLog::new(cfg.clone());
    let d_undo = apply(&mut undo, &ops);

    let mut redo = RedoLog::new(cfg.clone());
    let d_redo = apply(&mut redo, &ops);

    let mut shadow = ShadowPaging::new(cfg);
    let d_shadow = apply(&mut shadow, &ops);

    assert_eq!(d_ssp, d_undo, "SSP vs UNDO-LOG diverged (seed {seed})");
    assert_eq!(d_ssp, d_redo, "SSP vs REDO-LOG diverged (seed {seed})");
    assert_eq!(d_ssp, d_shadow, "SSP vs SHADOW diverged (seed {seed})");
}

#[test]
fn engines_agree_on_traces() {
    for seed in [1, 7, 42, 1234, 99999] {
        check_equivalence(seed);
    }
}

#[test]
fn engines_agree_with_frequent_crashes() {
    // Bias the trace toward crashes by running many short rounds.
    for seed in [3, 17, 2026] {
        let ops: Vec<Op> = random_trace(seed, 40);
        let crashy: Vec<Op> = ops
            .into_iter()
            .map(|op| match op {
                Op::Abort => Op::Crash,
                other => other,
            })
            .collect();
        let cfg = MachineConfig::default();
        let mut ssp = Ssp::new(cfg.clone(), SspConfig::default());
        let d_ssp = apply(&mut ssp, &crashy);
        let mut undo = UndoLog::new(cfg.clone());
        let d_undo = apply(&mut undo, &crashy);
        let mut redo = RedoLog::new(cfg);
        let d_redo = apply(&mut redo, &crashy);
        assert_eq!(d_ssp, d_undo, "seed {seed}");
        assert_eq!(d_ssp, d_redo, "seed {seed}");
    }
}

/// The crash-storm differential: identical trace + identical site-based
/// crash schedule must leave all four engines in the identical state.
#[test]
fn engines_agree_under_identical_crash_schedules() {
    let schedule = [
        (FaultSite::CommitData, 3),
        (FaultSite::CommitMark, 2),
        (FaultSite::CommitData, 5),
        (FaultSite::CommitMark, 4),
    ];
    for seed in [11, 77, 4242] {
        let ops = random_trace(seed, 30);
        let cfg = MachineConfig::default();

        let mut ssp = Ssp::new(cfg.clone(), SspConfig::default());
        let d_ssp = apply_with_cut_schedule(&mut ssp, &ops, &schedule);

        let mut undo = UndoLog::new(cfg.clone());
        let d_undo = apply_with_cut_schedule(&mut undo, &ops, &schedule);

        let mut redo = RedoLog::new(cfg.clone());
        let d_redo = apply_with_cut_schedule(&mut redo, &ops, &schedule);

        let mut shadow = ShadowPaging::new(cfg);
        let d_shadow = apply_with_cut_schedule(&mut shadow, &ops, &schedule);

        assert_eq!(d_ssp, d_undo, "SSP vs UNDO-LOG diverged (seed {seed})");
        assert_eq!(d_ssp, d_redo, "SSP vs REDO-LOG diverged (seed {seed})");
        assert_eq!(d_ssp, d_shadow, "SSP vs SHADOW diverged (seed {seed})");
    }
}

/// Cut semantics are site-defined, not engine-defined: a cut at
/// `CommitData` (before the durable mark) drops the torn transaction in
/// every engine, and a cut at `CommitMark` (after it) keeps it.
#[test]
fn commit_site_cuts_have_the_same_keep_drop_semantics_everywhere() {
    fn probe<E: TxnEngine>(engine: &mut E, name: &str) {
        let p = engine.map_new_page(C0).base();
        engine.begin(C0);
        engine.store(C0, p, &1u64.to_le_bytes());
        engine.commit(C0);

        engine.machine_mut().arm_crash(CrashPoint::AtSite {
            site: FaultSite::CommitData,
            hits: 1,
        });
        engine.begin(C0);
        engine.store(C0, p, &2u64.to_le_bytes());
        engine.commit(C0);
        assert!(engine.machine().power_lost(), "{name}: CommitData not hit");
        engine.crash();
        engine.recover();
        let mut buf = [0u8; 8];
        engine.load(C0, p, &mut buf);
        assert_eq!(
            u64::from_le_bytes(buf),
            1,
            "{name}: a CommitData cut must drop the torn transaction"
        );

        engine.machine_mut().arm_crash(CrashPoint::AtSite {
            site: FaultSite::CommitMark,
            hits: 1,
        });
        engine.begin(C0);
        engine.store(C0, p, &3u64.to_le_bytes());
        engine.commit(C0);
        assert!(engine.machine().power_lost(), "{name}: CommitMark not hit");
        engine.crash();
        engine.recover();
        engine.load(C0, p, &mut buf);
        assert_eq!(
            u64::from_le_bytes(buf),
            3,
            "{name}: a CommitMark cut must keep the committed transaction"
        );
    }
    let cfg = MachineConfig::default();
    probe(&mut Ssp::new(cfg.clone(), SspConfig::default()), "SSP");
    probe(&mut UndoLog::new(cfg.clone()), "UNDO");
    probe(&mut RedoLog::new(cfg.clone()), "REDO");
    probe(&mut ShadowPaging::new(cfg), "SHADOW");
}

#[test]
fn write_traffic_ordering_matches_the_paper() {
    // Structural sanity on the headline claim: for a write-heavy trace,
    // NVRAM writes satisfy SSP < REDO <= UNDO << SHADOW.
    let ops = random_trace(0x5A5A, 60);
    let only_commits: Vec<Op> = ops
        .into_iter()
        .map(|op| match op {
            Op::Abort | Op::Crash => Op::Commit,
            other => other,
        })
        .collect();
    let cfg = MachineConfig::default();

    let mut ssp = Ssp::new(cfg.clone(), SspConfig::default());
    apply(&mut ssp, &only_commits);
    let w_ssp = ssp.machine().stats().nvram_writes_total();

    let mut undo = UndoLog::new(cfg.clone());
    apply(&mut undo, &only_commits);
    let w_undo = undo.machine().stats().nvram_writes_total();

    let mut redo = RedoLog::new(cfg.clone());
    apply(&mut redo, &only_commits);
    let w_redo = redo.machine().stats().nvram_writes_total();

    let mut shadow = ShadowPaging::new(cfg);
    apply(&mut shadow, &only_commits);
    let w_shadow = shadow.machine().stats().nvram_writes_total();

    assert!(w_ssp < w_redo, "SSP ({w_ssp}) vs REDO ({w_redo})");
    assert!(w_redo <= w_undo, "REDO ({w_redo}) vs UNDO ({w_undo})");
    assert!(
        w_shadow > 3 * w_ssp,
        "page-granularity CoW ({w_shadow}) should dwarf SSP ({w_ssp})"
    );
}
