//! Integration tests for page consolidation and capacity behaviour — the
//! Section 3.4 machinery viewed from outside: TLB pressure drives pages
//! inactive, consolidation merges their frames, data stays correct, and
//! the 2x space overhead is confined to actively-updated pages.

use ssp::core::engine::Ssp;
use ssp::simulator::addr::VirtAddr;
use ssp::simulator::cache::CoreId;
use ssp::simulator::config::MachineConfig;
use ssp::txn::engine::TxnEngine;
use ssp::txn::view;
use ssp::{SspConfig, WriteClass};

const C0: CoreId = CoreId::new(0);

fn write_u64(e: &mut Ssp, addr: VirtAddr, v: u64) {
    e.begin(C0);
    e.store(C0, addr, &v.to_le_bytes());
    e.commit(C0);
}

#[test]
fn consolidation_preserves_data_under_heavy_tlb_churn() {
    let cfg = MachineConfig {
        dtlb_entries: 8,
        ..MachineConfig::default()
    };
    let mut e = Ssp::new(cfg, SspConfig::default());
    let pages: Vec<VirtAddr> = (0..64).map(|_| e.map_new_page(C0).base()).collect();

    // Three sweeps: every page is written, evicted from the tiny TLB,
    // consolidated, and rewritten.
    for sweep in 0..3u64 {
        for (i, &p) in pages.iter().enumerate() {
            write_u64(&mut e, p.add((i as u64 % 8) * 64), sweep * 1000 + i as u64);
        }
    }
    let stats = e.consolidation_stats();
    assert!(stats.pages >= 64, "pages consolidated: {}", stats.pages);
    assert!(stats.lines_copied > 0);

    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(
            view::read_u64(&mut e, C0, p.add((i as u64 % 8) * 64)),
            2000 + i as u64
        );
    }
    // And after a crash too.
    e.crash_and_recover();
    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(
            view::read_u64(&mut e, C0, p.add((i as u64 % 8) * 64)),
            2000 + i as u64
        );
    }
}

#[test]
fn consolidation_copies_fewer_side() {
    // Write one line on a page, evict it: consolidation should copy 1 line
    // (the single committed-in-shadow line), not 63.
    let cfg = MachineConfig {
        dtlb_entries: 2,
        ..MachineConfig::default()
    };
    let mut e = Ssp::new(cfg, SspConfig::default());
    let a = e.map_new_page(C0).base();
    write_u64(&mut e, a, 7);
    let before = e.consolidation_stats().lines_copied;
    // Touch two other pages to evict `a` from the 2-entry TLB.
    let b = e.map_new_page(C0).base();
    let c = e.map_new_page(C0).base();
    write_u64(&mut e, b, 1);
    write_u64(&mut e, c, 2);
    let copied = e.consolidation_stats().lines_copied - before;
    assert!(copied <= 2, "copied {copied} lines for a 1-line page");
    assert_eq!(view::read_u64(&mut e, C0, a), 7);
}

#[test]
fn consolidation_swaps_when_shadow_side_wins() {
    // Dirty 60 of 64 lines so the shadow page holds more committed data
    // and consolidation repoints the mapping instead of copying 60 lines.
    let cfg = MachineConfig {
        dtlb_entries: 2,
        ..MachineConfig::default()
    };
    let mut e = Ssp::new(cfg, SspConfig::default());
    let a = e.map_new_page(C0).base();
    e.begin(C0);
    for l in 0..60u64 {
        e.store(C0, a.add(l * 64), &(l + 100).to_le_bytes());
    }
    e.commit(C0);
    // Evict from TLB.
    let b = e.map_new_page(C0).base();
    let c = e.map_new_page(C0).base();
    write_u64(&mut e, b, 1);
    write_u64(&mut e, c, 2);
    let stats = e.consolidation_stats();
    assert!(stats.swaps >= 1, "role swap expected: {stats:?}");
    for l in 0..60u64 {
        assert_eq!(view::read_u64(&mut e, C0, a.add(l * 64)), l + 100);
    }
    e.crash_and_recover();
    for l in 0..60u64 {
        assert_eq!(view::read_u64(&mut e, C0, a.add(l * 64)), l + 100);
    }
}

#[test]
fn disabling_consolidation_trades_space_for_writes() {
    let cfg = MachineConfig {
        dtlb_entries: 8,
        ..MachineConfig::default()
    };

    let run = |consolidate: bool| {
        let ssp_cfg = SspConfig {
            consolidation_enabled: consolidate,
            ..SspConfig::default()
        };
        let mut e = Ssp::new(cfg.clone(), ssp_cfg);
        let pages: Vec<VirtAddr> = (0..48).map(|_| e.map_new_page(C0).base()).collect();
        // Odd sweep count: each line's committed bit ends up pointing at
        // the shadow copy, so un-consolidated pages genuinely hold two
        // live frames.
        for sweep in 0..3u64 {
            for (i, &p) in pages.iter().enumerate() {
                write_u64(&mut e, p, sweep + i as u64);
            }
        }
        (
            e.machine().stats().nvram_writes(WriteClass::Consolidation),
            e.pages_holding_two_frames(),
        )
    };

    let (eager_writes, eager_double) = run(true);
    let (lazy_writes, lazy_double) = run(false);
    assert!(eager_writes > 0);
    assert_eq!(lazy_writes, 0);
    assert!(
        lazy_double > eager_double,
        "without consolidation more pages hold two frames ({lazy_double} vs {eager_double})"
    );
}

#[test]
fn ssp_cache_grows_under_extreme_pressure_without_corruption() {
    // One slot's worth of cache, many live pages with nonzero committed
    // bitmaps and consolidation disabled: the cache must grow, not evict
    // live metadata.
    let ssp_cfg = SspConfig {
        ssp_cache_overprovision: 0,
        consolidation_enabled: false,
        ..SspConfig::default()
    };
    let cfg = MachineConfig {
        dtlb_entries: 2,
        cores: 1,
        ..MachineConfig::default()
    };
    let mut e = Ssp::new(cfg, ssp_cfg);
    let pages: Vec<VirtAddr> = (0..16).map(|_| e.map_new_page(C0).base()).collect();
    for (i, &p) in pages.iter().enumerate() {
        write_u64(&mut e, p, i as u64);
    }
    assert!(e.ssp_cache_grown() > 0, "cache grew beyond N*T+O");
    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(view::read_u64(&mut e, C0, p), i as u64);
    }
    e.crash_and_recover();
    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(view::read_u64(&mut e, C0, p), i as u64);
    }
}

#[test]
fn flip_broadcast_traffic_scales_with_first_writes() {
    let mut e = Ssp::new(MachineConfig::default(), SspConfig::default());
    let p = e.map_new_page(C0).base();
    // 10 transactions x 4 first-writes each = 40 flips.
    for t in 0..10u64 {
        e.begin(C0);
        for l in 0..4u64 {
            e.store(C0, p.add(l * 64), &(t * 10 + l).to_le_bytes());
            e.store(C0, p.add(l * 64), &(t * 20 + l).to_le_bytes()); // no extra flip
        }
        e.commit(C0);
    }
    assert_eq!(e.machine().stats().flip_broadcasts, 40);
}
