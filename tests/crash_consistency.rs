//! Cross-crate crash-consistency tests: random transaction streams with
//! randomly injected power failures, verified byte-for-byte against the
//! oracle, for every engine. This is the ACD guarantee the whole paper
//! rests on.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssp::baselines::{RedoLog, ShadowPaging, UndoLog};
use ssp::core::engine::Ssp;
use ssp::simulator::addr::VirtAddr;
use ssp::simulator::cache::CoreId;
use ssp::simulator::config::MachineConfig;
use ssp::txn::engine::TxnEngine;
use ssp::txn::history::Oracle;
use ssp::SspConfig;

const C0: CoreId = CoreId::new(0);

/// Drives `engine` with a deterministic random stream: transactions of
/// 1..=8 stores over `pages` pages, crashes injected with probability
/// `crash_prob` (checked before each commit and between stores). Verifies
/// the oracle after every crash and at the end.
fn torture<E: TxnEngine>(engine: &mut E, seed: u64, rounds: usize, crash_prob: f64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut oracle = Oracle::new();
    let pages: Vec<VirtAddr> = (0..6).map(|_| engine.map_new_page(C0).base()).collect();

    for round in 0..rounds {
        engine.begin(C0);
        let stores = rng.gen_range(1..=8);
        let mut crashed = false;
        for _ in 0..stores {
            if rng.gen_bool(crash_prob) {
                crashed = true;
                break;
            }
            let addr = pages[rng.gen_range(0..pages.len())].add(rng.gen_range(0..512u64) * 8);
            let val = rng.gen::<u64>().to_le_bytes();
            engine.store(C0, addr, &val);
            oracle.record_store(C0, addr, &val);
        }
        if crashed {
            engine.crash_and_recover();
            oracle.on_crash();
        } else if rng.gen_bool(0.1) {
            engine.abort(C0);
            oracle.on_abort(C0);
        } else {
            engine.commit(C0);
            oracle.on_commit(C0);
        }
        oracle
            .verify(engine, C0)
            .unwrap_or_else(|d| panic!("{} diverged in round {round}: {d}", engine.name()));
    }
}

#[test]
fn ssp_random_crashes() {
    let mut engine = Ssp::new(MachineConfig::default(), SspConfig::default());
    torture(&mut engine, 0xA1, 120, 0.08);
}

#[test]
fn undo_random_crashes() {
    let mut engine = UndoLog::new(MachineConfig::default());
    torture(&mut engine, 0xB2, 120, 0.08);
}

#[test]
fn redo_random_crashes() {
    let mut engine = RedoLog::new(MachineConfig::default());
    torture(&mut engine, 0xC3, 120, 0.08);
}

#[test]
fn shadow_random_crashes() {
    let mut engine = ShadowPaging::new(MachineConfig::default());
    torture(&mut engine, 0xD4, 120, 0.08);
}

#[test]
fn ssp_with_tiny_write_set_falls_back_and_stays_consistent() {
    let ssp_cfg = SspConfig {
        write_set_capacity: 2, // force the fall-back path constantly
        ..SspConfig::default()
    };
    let mut engine = Ssp::new(MachineConfig::default(), ssp_cfg);
    torture(&mut engine, 0xE5, 100, 0.08);
    assert!(engine.txn_stats().fallbacks > 0, "fall-back path exercised");
}

#[test]
fn ssp_with_aggressive_checkpointing_stays_consistent() {
    let ssp_cfg = SspConfig {
        checkpoint_threshold_bytes: 128,
        ..SspConfig::default()
    };
    let mut engine = Ssp::new(MachineConfig::default(), ssp_cfg);
    torture(&mut engine, 0xF6, 100, 0.08);
    assert!(engine.checkpoints() > 0, "checkpoints exercised");
}

#[test]
fn ssp_with_tiny_tlb_consolidates_and_stays_consistent() {
    let cfg = MachineConfig {
        dtlb_entries: 4, // constant TLB pressure -> constant consolidation
        ..MachineConfig::default()
    };
    let mut engine = Ssp::new(cfg, SspConfig::default());
    torture(&mut engine, 0x17, 100, 0.08);
    assert!(
        engine.consolidation_stats().pages > 0,
        "consolidation exercised"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for any seed and crash probability, SSP recovery restores
    /// exactly the committed prefix.
    #[test]
    fn prop_ssp_crash_consistency(seed in 0u64..10_000, crash_pct in 0u32..25) {
        let mut engine = Ssp::new(MachineConfig::default(), SspConfig::default());
        torture(&mut engine, seed, 40, crash_pct as f64 / 100.0);
    }

    /// The same property must hold for the baselines (they share the
    /// oracle-checked harness, so a bug in either engine or harness shows).
    #[test]
    fn prop_undo_crash_consistency(seed in 0u64..10_000) {
        let mut engine = UndoLog::new(MachineConfig::default());
        torture(&mut engine, seed, 30, 0.1);
    }

    #[test]
    fn prop_redo_crash_consistency(seed in 0u64..10_000) {
        let mut engine = RedoLog::new(MachineConfig::default());
        torture(&mut engine, seed, 30, 0.1);
    }
}

/// Real worker threads, one engine shard per worker (the threaded
/// driver's sharding scheme), every worker driving an oracle-checked
/// random stream. A [`Barrier`](std::sync::Barrier) aligns the crash:
/// each worker stops *mid-transaction* — committed prefix behind it,
/// uncommitted stores in flight — then the power fails on every shard and
/// each core's recovery must restore exactly its committed prefix.
fn threaded_crash_torture(threads: usize, seed: u64) {
    use ssp::workloads::runner::worker_seed;
    use std::sync::Barrier;

    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let cfg = MachineConfig::default().shard_slice(threads);
                    let mut engine = Ssp::new(cfg, SspConfig::default());
                    let mut rng = SmallRng::seed_from_u64(worker_seed(seed, w));
                    let mut oracle = Oracle::new();
                    let pages: Vec<VirtAddr> =
                        (0..4).map(|_| engine.map_new_page(C0).base()).collect();
                    let store = |engine: &mut Ssp, oracle: &mut Oracle, rng: &mut SmallRng| {
                        let addr =
                            pages[rng.gen_range(0..pages.len())].add(rng.gen_range(0..512u64) * 8);
                        let val = rng.gen::<u64>().to_le_bytes();
                        engine.store(C0, addr, &val);
                        oracle.record_store(C0, addr, &val);
                    };

                    // Committed prefix of a seed-dependent length.
                    let committed = rng.gen_range(4..16usize);
                    for _ in 0..committed {
                        engine.begin(C0);
                        for _ in 0..rng.gen_range(1..=6usize) {
                            store(&mut engine, &mut oracle, &mut rng);
                        }
                        engine.commit(C0);
                        oracle.on_commit(C0);
                    }

                    // Open a transaction and leave it mid-flight.
                    engine.begin(C0);
                    for _ in 0..rng.gen_range(1..=4usize) {
                        store(&mut engine, &mut oracle, &mut rng);
                    }

                    // Every worker is mid-transaction: the power fails.
                    barrier.wait();
                    engine.crash();
                    engine.recover();
                    oracle.on_crash();
                    oracle.verify(&mut engine, C0).unwrap_or_else(|d| {
                        panic!("worker {w}: recovery not prefix-consistent: {d}")
                    });

                    // The shard keeps working after recovery.
                    for _ in 0..5 {
                        engine.begin(C0);
                        store(&mut engine, &mut oracle, &mut rng);
                        engine.commit(C0);
                        oracle.on_commit(C0);
                    }
                    oracle
                        .verify(&mut engine, C0)
                        .unwrap_or_else(|d| panic!("worker {w} post-recovery: {d}"));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread panicked");
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: under real threads ∈ {2, 4}, a crash injected mid-run
    /// (all workers mid-transaction) recovers to a prefix-consistent
    /// state on every core, for any seed.
    #[test]
    fn prop_threaded_crash_recovers_prefix_per_core(pick in 0usize..2, seed in 0u64..10_000) {
        threaded_crash_torture([2, 4][pick], seed);
    }
}

/// Four cores, disjoint page sets (lock-based isolation by construction),
/// interleaved stores, a crash with all four mid-transaction: each core's
/// committed prefix must survive independently.
#[test]
fn four_cores_crash_mid_flight() {
    let mut engine = Ssp::new(MachineConfig::default(), SspConfig::default());
    let mut rng = SmallRng::seed_from_u64(0x4C);
    let mut oracle = Oracle::new();
    let cores: Vec<CoreId> = (0..4).map(CoreId::new).collect();
    let pages: Vec<Vec<VirtAddr>> = (0..4)
        .map(|_| (0..3).map(|_| engine.map_new_page(C0).base()).collect())
        .collect();

    for round in 0..25 {
        // Every core opens a transaction and issues interleaved stores.
        for &c in &cores {
            engine.begin(c);
        }
        for step in 0..6 {
            for (ci, &c) in cores.iter().enumerate() {
                let addr = pages[ci][rng.gen_range(0..3usize)].add(rng.gen_range(0..512u64) * 8);
                let val = rng.gen::<u64>().to_le_bytes();
                engine.store(c, addr, &val);
                oracle.record_store(c, addr, &val);
                let _ = step;
            }
        }
        // A random subset commits; the rest are torn by the crash.
        let mut crashed_any = false;
        for &c in &cores {
            if rng.gen_bool(0.7) {
                engine.commit(c);
                oracle.on_commit(c);
            } else {
                crashed_any = true;
            }
        }
        // Crash either on a torn transaction or periodically (clean crash).
        if crashed_any || round % 5 == 4 {
            engine.crash_and_recover();
            oracle.on_crash();
        }
        oracle
            .verify(&mut engine, C0)
            .unwrap_or_else(|d| panic!("round {round}: {d}"));
    }
}
