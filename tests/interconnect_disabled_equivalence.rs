//! Property: any interconnect configuration with `enabled == false` is
//! *completely* inert — whatever values the other knobs hold, every
//! engine produces cycle-for-cycle identical [`MachineStats`], elapsed
//! cycles and committed persistent state as a PR-2 run (the default
//! `InterconnectConfig::disabled()` machine), for 1, 2 and 4 worker
//! threads.
//!
//! This pins the PR's compatibility contract: the subsystem must be
//! zero-cost and zero-effect until the master switch is thrown, so every
//! existing figure bench and snapshot stays valid.

use proptest::prelude::*;
use ssp::baselines::{RedoLog, UndoLog};
use ssp::core::engine::Ssp;
use ssp::simulator::config::{InterconnectConfig, MachineConfig};
use ssp::txn::engine::TxnEngine;
use ssp::workloads::runner::{run_parallel, ExecMode, ParallelRun, RunConfig};
use ssp::workloads::{KeyDist, Sps};
use ssp::SspConfig;

/// Observables of one engine run: formatted stats, elapsed cycles, total
/// NVRAM writes, per-shard post-recovery fingerprints.
type Observation = (String, u64, u64, Vec<u64>);

/// Per-worker engine factory, boxed for the table of engines under test.
type EngineFactory = Box<dyn Fn(MachineConfig) -> Box<dyn TxnEngine> + Sync>;

/// Runs each of the three engines over a small sharded SPS workload and
/// returns the observable measurements per engine.
fn measure(interconnect: InterconnectConfig, threads: usize) -> Vec<Observation> {
    let mut shard = MachineConfig::default().shard_slice(threads);
    shard.interconnect = interconnect;
    let run_cfg = RunConfig {
        txns: 60,
        warmup: 10,
        threads,
        seed: 0xD15A_B1ED,
        mode: ExecMode::Threaded,
    };

    let mks: Vec<EngineFactory> = vec![
        Box::new(|cfg| Box::new(Ssp::new(cfg, SspConfig::default()))),
        Box::new(|cfg| Box::new(UndoLog::new(cfg))),
        Box::new(|cfg| Box::new(RedoLog::new(cfg))),
    ];
    mks.iter()
        .map(|mk| {
            let shard = shard.clone();
            let mut p: ParallelRun<Box<dyn TxnEngine>> = run_parallel(
                move |_| mk(shard.clone()),
                |_| Sps::new(512, KeyDist::uniform(512)),
                &run_cfg,
            );
            let prints: Vec<u64> = p
                .shards
                .iter_mut()
                .map(|s| {
                    s.engine.crash_and_recover();
                    s.engine.machine().nvram_fingerprint()
                })
                .collect();
            (
                format!("{:?}", p.result.stats),
                p.result.elapsed_cycles,
                p.result.stats.nvram_writes_total(),
                prints,
            )
        })
        .collect()
}

/// The PR-2 reference per thread count — independent of the fuzzed knobs,
/// so computed once for the whole property rather than once per case.
fn baseline(threads: usize) -> &'static Vec<Observation> {
    static BASELINES: std::sync::OnceLock<Vec<Vec<Observation>>> = std::sync::OnceLock::new();
    let all = BASELINES.get_or_init(|| {
        [1usize, 2, 4]
            .iter()
            .map(|&t| measure(InterconnectConfig::disabled(), t))
            .collect()
    });
    &all[match threads {
        1 => 0,
        2 => 1,
        4 => 2,
        _ => unreachable!("baseline not precomputed for {threads} threads"),
    }]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn any_disabled_config_is_bit_identical_to_pr2(
        epoch_cycles in 1u64..200_000,
        dram_banks in 1usize..128,
        nvram_banks in 1usize..64,
        partitioned in any::<bool>(),
        (fair, max_inflight, shared_llc) in (any::<bool>(), 0usize..16, any::<bool>()),
        (coherence, llc_sets, llc_ways) in (any::<bool>(), 1usize..20_000, 1usize..32),
    ) {
        let fuzzed = InterconnectConfig {
            enabled: false,
            epoch_cycles,
            dram_banks,
            nvram_banks,
            partitioned,
            fair,
            max_inflight,
            shared_llc,
            coherence,
            llc_sets,
            llc_ways,
        };
        for threads in [1usize, 2, 4] {
            let fuzzed_run = measure(fuzzed, threads);
            prop_assert_eq!(
                &fuzzed_run,
                baseline(threads),
                "disabled knobs leaked into the simulation (threads {})",
                threads
            );
        }
    }
}
